#include "instrument/analyzers.h"

#include <algorithm>
#include <cassert>

#include "stats/correlation.h"
#include "stats/percentile.h"

namespace swarmlab::instrument {

EntropyResult analyze_entropy(const LocalPeerLog& log, double min_residency) {
  EntropyResult result;
  for (const auto& [id, r] : log.records()) {
    if (r.time_in_set < min_residency) continue;  // §IV-A.1 noise filter
    // Only remote *leechers* enter the entropy characterization (paper
    // footnote 4). The same residency floor applies to the
    // leecher-to-leecher window: a seed is a "leecher" for the fraction
    // of a second between connecting and its bitfield arriving, and that
    // sliver must not produce a spurious ratio.
    if (r.time_in_set_leecher < min_residency) continue;
    result.local_interest_ratios.push_back(r.local_interested_leecher /
                                           r.time_in_set_leecher);
    result.remote_interest_ratios.push_back(r.remote_interested_leecher /
                                            r.time_in_set_leecher);
  }
  if (!result.local_interest_ratios.empty()) {
    result.p20_local = stats::percentile(result.local_interest_ratios, 20.0);
    result.median_local =
        stats::percentile(result.local_interest_ratios, 50.0);
    result.p80_local = stats::percentile(result.local_interest_ratios, 80.0);
  }
  if (!result.remote_interest_ratios.empty()) {
    result.p20_remote =
        stats::percentile(result.remote_interest_ratios, 20.0);
    result.median_remote =
        stats::percentile(result.remote_interest_ratios, 50.0);
    result.p80_remote =
        stats::percentile(result.remote_interest_ratios, 80.0);
  }
  return result;
}

namespace {

InterarrivalResult interarrivals_from_times(const std::vector<double>& times,
                                            double origin, std::size_t k) {
  InterarrivalResult result;
  double prev = origin;
  std::vector<double> gaps;
  gaps.reserve(times.size());
  for (const double t : times) {
    gaps.push_back(t - prev);
    prev = t;
  }
  for (const double g : gaps) result.all.add(g);
  const std::size_t first_n = std::min(k, gaps.size());
  for (std::size_t i = 0; i < first_n; ++i) result.first_k.add(gaps[i]);
  const std::size_t last_start = gaps.size() > k ? gaps.size() - k : 0;
  for (std::size_t i = last_start; i < gaps.size(); ++i) {
    result.last_k.add(gaps[i]);
  }
  return result;
}

}  // namespace

InterarrivalResult analyze_piece_interarrival(const LocalPeerLog& log,
                                              std::size_t k) {
  std::vector<double> times;
  times.reserve(log.piece_events().size());
  for (const PieceEvent& e : log.piece_events()) times.push_back(e.time);
  return interarrivals_from_times(times, log.start_time(), k);
}

InterarrivalResult analyze_block_interarrival(const LocalPeerLog& log,
                                              std::size_t k) {
  std::vector<double> times;
  times.reserve(log.block_events().size());
  for (const BlockEvent& e : log.block_events()) times.push_back(e.time);
  return interarrivals_from_times(times, log.start_time(), k);
}

namespace {

/// Orders remote peers by `up` descending, then fills per-set upload and
/// download fractions for the first `num_sets` sets of `set_size`.
ContributionSets contribution_sets(
    const std::map<peer::PeerId, RemotePeerRecord>& records,
    std::size_t set_size, std::size_t num_sets,
    std::uint64_t (*up)(const RemotePeerRecord&),
    std::uint64_t (*down)(const RemotePeerRecord&)) {
  struct Pair {
    std::uint64_t up;
    std::uint64_t down;
  };
  std::vector<Pair> peers;
  std::uint64_t total_up = 0;
  std::uint64_t total_down = 0;
  for (const auto& [id, r] : records) {
    const Pair p{up(r), down(r)};
    total_up += p.up;
    total_down += p.down;
    if (p.up > 0 || p.down > 0) peers.push_back(p);
  }
  std::stable_sort(peers.begin(), peers.end(),
                   [](const Pair& a, const Pair& b) { return a.up > b.up; });
  ContributionSets result;
  result.total_uploaded = total_up;
  result.total_downloaded_from_leechers = total_down;
  for (std::size_t s = 0; s < num_sets; ++s) {
    std::uint64_t set_up = 0;
    std::uint64_t set_down = 0;
    for (std::size_t i = s * set_size;
         i < std::min((s + 1) * set_size, peers.size()); ++i) {
      set_up += peers[i].up;
      set_down += peers[i].down;
    }
    result.upload_fraction.push_back(
        total_up > 0 ? static_cast<double>(set_up) /
                           static_cast<double>(total_up)
                     : 0.0);
    result.download_fraction.push_back(
        total_down > 0 ? static_cast<double>(set_down) /
                             static_cast<double>(total_down)
                       : 0.0);
  }
  return result;
}

}  // namespace

ContributionSets analyze_leecher_fairness(const LocalPeerLog& log,
                                          std::size_t set_size,
                                          std::size_t num_sets) {
  return contribution_sets(
      log.records(), set_size, num_sets,
      [](const RemotePeerRecord& r) { return r.up_bytes_leecher; },
      // Paper: "All seeds are removed from the data used for the bottom
      // graph, as it is not possible to reciprocate data to seeds."
      [](const RemotePeerRecord& r) { return r.down_bytes_from_leecher; });
}

ContributionSets analyze_seed_fairness(const LocalPeerLog& log,
                                       std::size_t set_size,
                                       std::size_t num_sets) {
  return contribution_sets(
      log.records(), set_size, num_sets,
      [](const RemotePeerRecord& r) { return r.up_bytes_seed; },
      [](const RemotePeerRecord&) { return std::uint64_t{0}; });
}

namespace {

UnchokeCorrelation unchoke_correlation(
    const std::map<peer::PeerId, RemotePeerRecord>& records, bool seed) {
  UnchokeCorrelation result;
  for (const auto& [id, r] : records) {
    const double interested =
        seed ? r.remote_interested_seed : r.remote_interested_leecher;
    const double unchokes =
        seed ? static_cast<double>(r.unchokes_seed)
             : static_cast<double>(r.unchokes_leecher);
    const double in_set = seed ? r.time_in_set_seed : r.time_in_set_leecher;
    if (in_set <= 0.0) continue;
    result.interested_time.push_back(interested);
    result.unchokes.push_back(unchokes);
  }
  result.spearman =
      stats::spearman(result.interested_time, result.unchokes);
  result.pearson = stats::pearson(result.interested_time, result.unchokes);
  return result;
}

}  // namespace

UnchokeCorrelation analyze_unchoke_correlation_leecher(
    const LocalPeerLog& log) {
  return unchoke_correlation(log.records(), /*seed=*/false);
}

UnchokeCorrelation analyze_unchoke_correlation_seed(const LocalPeerLog& log) {
  return unchoke_correlation(log.records(), /*seed=*/true);
}

}  // namespace swarmlab::instrument
