#include "instrument/local_log.h"

#include <cassert>

namespace swarmlab::instrument {

RemotePeerRecord& LocalPeerLog::record(peer::PeerId id) {
  auto [it, inserted] = records_.try_emplace(id);
  if (inserted) it->second.id = id;
  return it->second;
}

LocalPeerLog::LiveState& LocalPeerLog::live(peer::PeerId id) {
  return live_[id];
}

void LocalPeerLog::flush(peer::PeerId id, double t) {
  LiveState& s = live(id);
  const double dt = t - s.last_flush;
  if (dt <= 0.0) return;  // never rewind the accrual clock
  s.last_flush = t;
  if (!s.in_set) return;
  RemotePeerRecord& r = record(id);
  r.time_in_set += dt;
  if (!local_seed_) {
    if (!r.remote_is_seed) {
      // Leecher-to-leecher accounting (Fig. 1 footnote: only leechers are
      // relevant for the entropy characterization).
      r.time_in_set_leecher += dt;
      if (s.local_interested) r.local_interested_leecher += dt;
      if (s.remote_interested) r.remote_interested_leecher += dt;
    }
  } else {
    r.time_in_set_seed += dt;
    if (s.remote_interested) r.remote_interested_seed += dt;
  }
}

void LocalPeerLog::flush_all(double t) {
  for (auto& [id, s] : live_) flush(id, t);
}

void LocalPeerLog::finalize(double t) { flush_all(t); }

void LocalPeerLog::on_start(sim::SimTime t) { start_time_ = t; }

void LocalPeerLog::on_stop(sim::SimTime t) { flush_all(t); }

void LocalPeerLog::on_peer_joined(sim::SimTime t, peer::PeerId remote) {
  record(remote);
  LiveState& s = live(remote);
  flush(remote, t);
  s.in_set = true;
  s.local_interested = false;
  s.remote_interested = false;
  // A rejoining peer's piece knowledge resets with the new connection.
  RemotePeerRecord& r = record(remote);
  r.remote_pieces = 0;
  r.remote_is_seed = false;
}

void LocalPeerLog::on_peer_left(sim::SimTime t, peer::PeerId remote) {
  flush(remote, t);
  LiveState& s = live(remote);
  s.in_set = false;
  s.local_interested = false;
  s.remote_interested = false;
}

void LocalPeerLog::note_remote_pieces(peer::PeerId id,
                                      std::uint32_t new_count, double t) {
  RemotePeerRecord& r = record(id);
  if (new_count == r.remote_pieces) return;
  const bool was_seed = r.remote_is_seed;
  const bool now_seed = new_count >= num_pieces_;
  if (was_seed != now_seed) {
    // Seed-status flips gate the leecher-to-leecher interval buckets.
    flush(id, t);
  }
  r.remote_pieces = new_count;
  r.remote_is_seed = now_seed;
  if (now_seed) r.ever_remote_seed = true;
}

void LocalPeerLog::on_message_sent(sim::SimTime /*t*/, peer::PeerId /*to*/,
                                   const wire::Message& msg) {
  ++message_counters_.sent[wire::message_name(msg)];
}

void LocalPeerLog::on_message_received(sim::SimTime t, peer::PeerId from,
                                       const wire::Message& msg) {
  ++message_counters_.received[wire::message_name(msg)];
  if (const auto* bf = std::get_if<wire::BitfieldMsg>(&msg)) {
    std::uint32_t count = 0;
    for (const bool b : bf->bits) count += b ? 1 : 0;
    note_remote_pieces(from, count, t);
  } else if (std::get_if<wire::HaveMsg>(&msg) != nullptr) {
    note_remote_pieces(from, record(from).remote_pieces + 1, t);
  }
}

void LocalPeerLog::on_interest_change(sim::SimTime t, peer::PeerId remote,
                                      bool interested) {
  flush(remote, t);
  live(remote).local_interested = interested;
}

void LocalPeerLog::on_remote_interest_change(sim::SimTime t,
                                             peer::PeerId remote,
                                             bool interested) {
  flush(remote, t);
  live(remote).remote_interested = interested;
}

void LocalPeerLog::on_local_choke_change(sim::SimTime /*t*/,
                                         peer::PeerId remote, bool unchoked) {
  if (!unchoked) return;
  RemotePeerRecord& r = record(remote);
  if (local_seed_) {
    ++r.unchokes_seed;
  } else {
    ++r.unchokes_leecher;
  }
}

void LocalPeerLog::on_remote_choke_change(sim::SimTime /*t*/,
                                          peer::PeerId /*remote*/,
                                          bool /*unchoked*/) {}

void LocalPeerLog::on_block_received(sim::SimTime t, peer::PeerId from,
                                     wire::BlockRef block,
                                     std::uint32_t bytes) {
  block_events_.push_back(BlockEvent{t, from, block});
  RemotePeerRecord& r = record(from);
  if (r.remote_is_seed) {
    r.down_bytes_from_seed += bytes;
  } else {
    r.down_bytes_from_leecher += bytes;
  }
}

void LocalPeerLog::on_block_uploaded(sim::SimTime /*t*/, peer::PeerId to,
                                     wire::BlockRef /*block*/,
                                     std::uint32_t bytes) {
  RemotePeerRecord& r = record(to);
  if (local_seed_) {
    r.up_bytes_seed += bytes;
  } else {
    r.up_bytes_leecher += bytes;
  }
}

void LocalPeerLog::on_piece_complete(sim::SimTime t,
                                     wire::PieceIndex piece) {
  piece_events_.push_back(PieceEvent{t, piece});
}

void LocalPeerLog::on_end_game(sim::SimTime t) {
  if (end_game_time_ < 0.0) end_game_time_ = t;
}

void LocalPeerLog::on_became_seed(sim::SimTime t) {
  flush_all(t);
  local_seed_ = true;
  seed_time_ = t;
}

}  // namespace swarmlab::instrument
