#include "instrument/trace.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>

namespace swarmlab::instrument {

namespace {

// RFC 4180: quote a field only when it contains a separator, a quote or
// a line break; embedded quotes are doubled. Plain fields pass through
// untouched so existing traces stay byte-identical.
void write_csv_field(std::ostream& out, std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

// Minimal JSON string escape (quote, backslash, control characters).
void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void TraceWriter::push(double t, const char* kind, peer::PeerId remote,
                       std::string detail) {
  last_time_ = t;
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{t, kind, remote, std::move(detail)});
}

void TraceWriter::annotate(double t, std::string kind, peer::PeerId remote,
                           std::string detail) {
  last_time_ = t;
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(
      TraceEvent{t, std::move(kind), remote, std::move(detail)});
}

void TraceWriter::on_start(sim::SimTime t) { push(t, "start", 0, ""); }
void TraceWriter::on_stop(sim::SimTime t) { push(t, "stop", 0, ""); }

void TraceWriter::on_peer_joined(sim::SimTime t, peer::PeerId remote) {
  push(t, "peer_joined", remote, "");
}

void TraceWriter::on_peer_left(sim::SimTime t, peer::PeerId remote) {
  push(t, "peer_left", remote, "");
}

void TraceWriter::on_message_sent(sim::SimTime t, peer::PeerId to,
                                  const wire::Message& msg) {
  push(t, "msg_sent", to, wire::message_name(msg));
}

void TraceWriter::on_message_received(sim::SimTime t, peer::PeerId from,
                                      const wire::Message& msg) {
  push(t, "msg_recv", from, wire::message_name(msg));
}

void TraceWriter::on_interest_change(sim::SimTime t, peer::PeerId remote,
                                     bool interested) {
  push(t, "local_interest", remote, interested ? "1" : "0");
}

void TraceWriter::on_remote_interest_change(sim::SimTime t,
                                            peer::PeerId remote,
                                            bool interested) {
  push(t, "remote_interest", remote, interested ? "1" : "0");
}

void TraceWriter::on_local_choke_change(sim::SimTime t, peer::PeerId remote,
                                        bool unchoked) {
  push(t, "local_unchoke", remote, unchoked ? "1" : "0");
}

void TraceWriter::on_remote_choke_change(sim::SimTime t,
                                         peer::PeerId remote,
                                         bool unchoked) {
  push(t, "remote_unchoke", remote, unchoked ? "1" : "0");
}

void TraceWriter::on_choke_round(sim::SimTime t, bool seed_state,
                                 const std::vector<peer::PeerId>& unchoked) {
  std::string detail = seed_state ? "seed:" : "leecher:";
  for (std::size_t i = 0; i < unchoked.size(); ++i) {
    if (i > 0) detail += ' ';
    detail += std::to_string(unchoked[i]);
  }
  push(t, "choke_round", 0, std::move(detail));
}

void TraceWriter::on_block_received(sim::SimTime t, peer::PeerId from,
                                    wire::BlockRef block,
                                    std::uint32_t bytes) {
  push(t, "block_recv", from,
       std::to_string(block.piece) + "/" + std::to_string(block.block) +
           ":" + std::to_string(bytes));
}

void TraceWriter::on_block_uploaded(sim::SimTime t, peer::PeerId to,
                                    wire::BlockRef block,
                                    std::uint32_t bytes) {
  push(t, "block_sent", to,
       std::to_string(block.piece) + "/" + std::to_string(block.block) +
           ":" + std::to_string(bytes));
}

void TraceWriter::on_piece_complete(sim::SimTime t, wire::PieceIndex piece) {
  push(t, "piece_done", 0, std::to_string(piece));
}

void TraceWriter::on_piece_failed(sim::SimTime t, wire::PieceIndex piece) {
  push(t, "piece_failed", 0, std::to_string(piece));
}

void TraceWriter::on_end_game(sim::SimTime t) { push(t, "end_game", 0, ""); }

void TraceWriter::on_became_seed(sim::SimTime t) {
  push(t, "became_seed", 0, "");
}

void TraceWriter::write_csv(std::ostream& out) const {
  out << "time,kind,remote,detail\n";
  for (const TraceEvent& e : events_) {
    out << e.time << ',';
    write_csv_field(out, e.kind);
    out << ',' << e.remote << ',';
    write_csv_field(out, e.detail);
    out << '\n';
  }
  if (dropped_ > 0) {
    out << last_time_ << ",trace_truncated,0,dropped=" << dropped_ << '\n';
  }
}

void TraceWriter::write_jsonl(std::ostream& out) const {
  out << "{\"schema\":\"swarmlab.trace/1\"}\n";
  for (const TraceEvent& e : events_) {
    out << "{\"t\":" << e.time << ",\"kind\":";
    write_json_string(out, e.kind);
    out << ",\"remote\":" << e.remote << ",\"detail\":";
    write_json_string(out, e.detail);
    out << "}\n";
  }
  out << "{\"events\":" << events_.size() << ",\"dropped\":" << dropped_
      << "}\n";
}

// --- ObserverList ---------------------------------------------------------

// Index-based with the size captured at entry: observers added during
// dispatch (push_back may reallocate) are not visited for the in-flight
// event, and slots nulled by remove() are skipped. Compaction waits for
// the outermost dispatch to unwind so indices stay stable.
template <typename Fn>
void ObserverList::dispatch(Fn&& fn) {
  ++depth_;
  const std::size_t n = observers_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (peer::PeerObserver* o = observers_[i]; o != nullptr) fn(o);
  }
  if (--depth_ == 0 && dirty_) {
    std::erase(observers_, static_cast<peer::PeerObserver*>(nullptr));
    dirty_ = false;
  }
}

bool ObserverList::remove(peer::PeerObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it == observers_.end()) return false;
  if (depth_ > 0) {
    *it = nullptr;
    dirty_ = true;
  } else {
    observers_.erase(it);
  }
  return true;
}

std::size_t ObserverList::size() const {
  return static_cast<std::size_t>(
      std::count_if(observers_.begin(), observers_.end(),
                    [](const peer::PeerObserver* o) { return o != nullptr; }));
}

void ObserverList::on_start(sim::SimTime t) {
  dispatch([&](peer::PeerObserver* o) { o->on_start(t); });
}
void ObserverList::on_stop(sim::SimTime t) {
  dispatch([&](peer::PeerObserver* o) { o->on_stop(t); });
}
void ObserverList::on_peer_joined(sim::SimTime t, peer::PeerId remote) {
  dispatch([&](peer::PeerObserver* o) { o->on_peer_joined(t, remote); });
}
void ObserverList::on_peer_left(sim::SimTime t, peer::PeerId remote) {
  dispatch([&](peer::PeerObserver* o) { o->on_peer_left(t, remote); });
}
void ObserverList::on_message_sent(sim::SimTime t, peer::PeerId to,
                                   const wire::Message& msg) {
  dispatch([&](peer::PeerObserver* o) { o->on_message_sent(t, to, msg); });
}
void ObserverList::on_message_received(sim::SimTime t, peer::PeerId from,
                                       const wire::Message& msg) {
  dispatch(
      [&](peer::PeerObserver* o) { o->on_message_received(t, from, msg); });
}
void ObserverList::on_interest_change(sim::SimTime t, peer::PeerId remote,
                                      bool interested) {
  dispatch([&](peer::PeerObserver* o) {
    o->on_interest_change(t, remote, interested);
  });
}
void ObserverList::on_remote_interest_change(sim::SimTime t,
                                             peer::PeerId remote,
                                             bool interested) {
  dispatch([&](peer::PeerObserver* o) {
    o->on_remote_interest_change(t, remote, interested);
  });
}
void ObserverList::on_local_choke_change(sim::SimTime t, peer::PeerId remote,
                                         bool unchoked) {
  dispatch([&](peer::PeerObserver* o) {
    o->on_local_choke_change(t, remote, unchoked);
  });
}
void ObserverList::on_remote_choke_change(sim::SimTime t,
                                          peer::PeerId remote,
                                          bool unchoked) {
  dispatch([&](peer::PeerObserver* o) {
    o->on_remote_choke_change(t, remote, unchoked);
  });
}
void ObserverList::on_choke_round(sim::SimTime t, bool seed_state,
                                  const std::vector<peer::PeerId>& unchoked) {
  dispatch([&](peer::PeerObserver* o) {
    o->on_choke_round(t, seed_state, unchoked);
  });
}
void ObserverList::on_block_received(sim::SimTime t, peer::PeerId from,
                                     wire::BlockRef block,
                                     std::uint32_t bytes) {
  dispatch([&](peer::PeerObserver* o) {
    o->on_block_received(t, from, block, bytes);
  });
}
void ObserverList::on_block_uploaded(sim::SimTime t, peer::PeerId to,
                                     wire::BlockRef block,
                                     std::uint32_t bytes) {
  dispatch([&](peer::PeerObserver* o) {
    o->on_block_uploaded(t, to, block, bytes);
  });
}
void ObserverList::on_piece_complete(sim::SimTime t,
                                     wire::PieceIndex piece) {
  dispatch([&](peer::PeerObserver* o) { o->on_piece_complete(t, piece); });
}
void ObserverList::on_piece_failed(sim::SimTime t, wire::PieceIndex piece) {
  dispatch([&](peer::PeerObserver* o) { o->on_piece_failed(t, piece); });
}
void ObserverList::on_end_game(sim::SimTime t) {
  dispatch([&](peer::PeerObserver* o) { o->on_end_game(t); });
}
void ObserverList::on_became_seed(sim::SimTime t) {
  dispatch([&](peer::PeerObserver* o) { o->on_became_seed(t); });
}

}  // namespace swarmlab::instrument
