#include "instrument/trace.h"

#include <string>

namespace swarmlab::instrument {

void TraceWriter::push(double t, const char* kind, peer::PeerId remote,
                       std::string detail) {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{t, kind, remote, std::move(detail)});
}

void TraceWriter::on_start(sim::SimTime t) { push(t, "start", 0, ""); }
void TraceWriter::on_stop(sim::SimTime t) { push(t, "stop", 0, ""); }

void TraceWriter::on_peer_joined(sim::SimTime t, peer::PeerId remote) {
  push(t, "peer_joined", remote, "");
}

void TraceWriter::on_peer_left(sim::SimTime t, peer::PeerId remote) {
  push(t, "peer_left", remote, "");
}

void TraceWriter::on_message_sent(sim::SimTime t, peer::PeerId to,
                                  const wire::Message& msg) {
  push(t, "msg_sent", to, wire::message_name(msg));
}

void TraceWriter::on_message_received(sim::SimTime t, peer::PeerId from,
                                      const wire::Message& msg) {
  push(t, "msg_recv", from, wire::message_name(msg));
}

void TraceWriter::on_interest_change(sim::SimTime t, peer::PeerId remote,
                                     bool interested) {
  push(t, "local_interest", remote, interested ? "1" : "0");
}

void TraceWriter::on_remote_interest_change(sim::SimTime t,
                                            peer::PeerId remote,
                                            bool interested) {
  push(t, "remote_interest", remote, interested ? "1" : "0");
}

void TraceWriter::on_local_choke_change(sim::SimTime t, peer::PeerId remote,
                                        bool unchoked) {
  push(t, "local_unchoke", remote, unchoked ? "1" : "0");
}

void TraceWriter::on_remote_choke_change(sim::SimTime t,
                                         peer::PeerId remote,
                                         bool unchoked) {
  push(t, "remote_unchoke", remote, unchoked ? "1" : "0");
}

void TraceWriter::on_choke_round(sim::SimTime t, bool seed_state,
                                 const std::vector<peer::PeerId>& unchoked) {
  std::string detail = seed_state ? "seed:" : "leecher:";
  for (std::size_t i = 0; i < unchoked.size(); ++i) {
    if (i > 0) detail += ' ';
    detail += std::to_string(unchoked[i]);
  }
  push(t, "choke_round", 0, std::move(detail));
}

void TraceWriter::on_block_received(sim::SimTime t, peer::PeerId from,
                                    wire::BlockRef block,
                                    std::uint32_t bytes) {
  push(t, "block_recv", from,
       std::to_string(block.piece) + "/" + std::to_string(block.block) +
           ":" + std::to_string(bytes));
}

void TraceWriter::on_block_uploaded(sim::SimTime t, peer::PeerId to,
                                    wire::BlockRef block,
                                    std::uint32_t bytes) {
  push(t, "block_sent", to,
       std::to_string(block.piece) + "/" + std::to_string(block.block) +
           ":" + std::to_string(bytes));
}

void TraceWriter::on_piece_complete(sim::SimTime t, wire::PieceIndex piece) {
  push(t, "piece_done", 0, std::to_string(piece));
}

void TraceWriter::on_piece_failed(sim::SimTime t, wire::PieceIndex piece) {
  push(t, "piece_failed", 0, std::to_string(piece));
}

void TraceWriter::on_end_game(sim::SimTime t) { push(t, "end_game", 0, ""); }

void TraceWriter::on_became_seed(sim::SimTime t) {
  push(t, "became_seed", 0, "");
}

void TraceWriter::write_csv(std::ostream& out) const {
  out << "time,kind,remote,detail\n";
  for (const TraceEvent& e : events_) {
    out << e.time << ',' << e.kind << ',' << e.remote << ',' << e.detail
        << '\n';
  }
}

// --- ObserverList ---------------------------------------------------------

void ObserverList::on_start(sim::SimTime t) {
  for (auto* o : observers_) o->on_start(t);
}
void ObserverList::on_stop(sim::SimTime t) {
  for (auto* o : observers_) o->on_stop(t);
}
void ObserverList::on_peer_joined(sim::SimTime t, peer::PeerId remote) {
  for (auto* o : observers_) o->on_peer_joined(t, remote);
}
void ObserverList::on_peer_left(sim::SimTime t, peer::PeerId remote) {
  for (auto* o : observers_) o->on_peer_left(t, remote);
}
void ObserverList::on_message_sent(sim::SimTime t, peer::PeerId to,
                                   const wire::Message& msg) {
  for (auto* o : observers_) o->on_message_sent(t, to, msg);
}
void ObserverList::on_message_received(sim::SimTime t, peer::PeerId from,
                                       const wire::Message& msg) {
  for (auto* o : observers_) o->on_message_received(t, from, msg);
}
void ObserverList::on_interest_change(sim::SimTime t, peer::PeerId remote,
                                      bool interested) {
  for (auto* o : observers_) o->on_interest_change(t, remote, interested);
}
void ObserverList::on_remote_interest_change(sim::SimTime t,
                                             peer::PeerId remote,
                                             bool interested) {
  for (auto* o : observers_) {
    o->on_remote_interest_change(t, remote, interested);
  }
}
void ObserverList::on_local_choke_change(sim::SimTime t, peer::PeerId remote,
                                         bool unchoked) {
  for (auto* o : observers_) o->on_local_choke_change(t, remote, unchoked);
}
void ObserverList::on_remote_choke_change(sim::SimTime t,
                                          peer::PeerId remote,
                                          bool unchoked) {
  for (auto* o : observers_) o->on_remote_choke_change(t, remote, unchoked);
}
void ObserverList::on_choke_round(sim::SimTime t, bool seed_state,
                                  const std::vector<peer::PeerId>& unchoked) {
  for (auto* o : observers_) o->on_choke_round(t, seed_state, unchoked);
}
void ObserverList::on_block_received(sim::SimTime t, peer::PeerId from,
                                     wire::BlockRef block,
                                     std::uint32_t bytes) {
  for (auto* o : observers_) o->on_block_received(t, from, block, bytes);
}
void ObserverList::on_block_uploaded(sim::SimTime t, peer::PeerId to,
                                     wire::BlockRef block,
                                     std::uint32_t bytes) {
  for (auto* o : observers_) o->on_block_uploaded(t, to, block, bytes);
}
void ObserverList::on_piece_complete(sim::SimTime t,
                                     wire::PieceIndex piece) {
  for (auto* o : observers_) o->on_piece_complete(t, piece);
}
void ObserverList::on_piece_failed(sim::SimTime t, wire::PieceIndex piece) {
  for (auto* o : observers_) o->on_piece_failed(t, piece);
}
void ObserverList::on_end_game(sim::SimTime t) {
  for (auto* o : observers_) o->on_end_game(t);
}
void ObserverList::on_became_seed(sim::SimTime t) {
  for (auto* o : observers_) o->on_became_seed(t);
}

}  // namespace swarmlab::instrument
