// Periodic samplers over the local peer's state, backing the time-axis
// figures: piece replication in the peer set (Figs. 2 and 4), rarest-set
// size (Figs. 3 and 6), peer set size (Fig. 5), and the rate estimations
// the choke algorithm consumes (the paper's third instrumentation log,
// §III-C).
#pragma once

#include "peer/peer.h"
#include "sim/simulation.h"
#include "stats/timeseries.h"

namespace swarmlab::instrument {

/// Samples min/mean/max piece copies in the local peer set, the rarest
/// pieces set size, and the peer set size every `interval` seconds.
class AvailabilitySampler {
 public:
  /// Starts sampling immediately; keeps sampling until the simulation
  /// drains or stop() is called.
  AvailabilitySampler(sim::Simulation& sim, const peer::Peer& peer,
                      double interval = 10.0);
  ~AvailabilitySampler();

  AvailabilitySampler(const AvailabilitySampler&) = delete;
  AvailabilitySampler& operator=(const AvailabilitySampler&) = delete;

  void stop();

  [[nodiscard]] const stats::TimeSeries& min_copies() const { return min_; }
  [[nodiscard]] const stats::TimeSeries& mean_copies() const { return mean_; }
  [[nodiscard]] const stats::TimeSeries& max_copies() const { return max_; }
  [[nodiscard]] const stats::TimeSeries& rarest_set_size() const {
    return rarest_;
  }
  [[nodiscard]] const stats::TimeSeries& peer_set_size() const {
    return peers_;
  }

 private:
  void tick();

  sim::Simulation& sim_;
  const peer::Peer& peer_;
  double interval_;
  sim::EventId event_ = 0;
  bool stopped_ = false;
  stats::TimeSeries min_;
  stats::TimeSeries mean_;
  stats::TimeSeries max_;
  stats::TimeSeries rarest_;
  stats::TimeSeries peers_;
};

/// Samples the local peer's aggregate transfer rates (the trailing-window
/// estimates the choke algorithm orders peers by) and the size of its
/// active set.
class RateSampler {
 public:
  RateSampler(sim::Simulation& sim, const peer::Peer& peer,
              double interval = 10.0);
  ~RateSampler();

  RateSampler(const RateSampler&) = delete;
  RateSampler& operator=(const RateSampler&) = delete;

  void stop();

  /// Sum of per-connection download-rate estimates (bytes/s).
  [[nodiscard]] const stats::TimeSeries& download_rate() const {
    return down_;
  }
  /// Sum of per-connection upload-rate estimates (bytes/s).
  [[nodiscard]] const stats::TimeSeries& upload_rate() const { return up_; }
  /// Number of peers currently unchoked by the local peer.
  [[nodiscard]] const stats::TimeSeries& unchoked_peers() const {
    return unchoked_;
  }

 private:
  void tick();

  sim::Simulation& sim_;
  const peer::Peer& peer_;
  double interval_;
  sim::EventId event_ = 0;
  bool stopped_ = false;
  stats::TimeSeries down_;
  stats::TimeSeries up_;
  stats::TimeSeries unchoked_;
};

}  // namespace swarmlab::instrument
