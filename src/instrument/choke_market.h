// Choke-market analysis — the paper's named future work (§IV-B.2):
// "Our guess is that the choke algorithm leads to an equilibrium in the
//  peer selection. The exploration of this equilibrium is fundamental to
//  the understanding of the choke algorithm efficiency."
//
// ChokeMarketLog observes the local peer's choke rounds together with the
// remote peers' choke decisions toward the local peer, and quantifies the
// equilibrium: how long unchoke relationships last (tenure) and how often
// an unchoke is mutual (both sides keep a slot open), compared with the
// mutuality a random slot assignment would produce.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "peer/observer.h"

namespace swarmlab::instrument {

/// Equilibrium statistics over the local peer's leecher-state rounds.
struct MarketStats {
  std::uint64_t rounds = 0;            ///< leecher-state choke rounds seen
  std::uint64_t slot_rounds = 0;       ///< sum of unchoked peers per round
  /// Tenures: lengths (in consecutive rounds) of completed unchoke spells.
  std::vector<double> tenures;
  double mean_tenure = 0.0;
  double max_tenure = 0.0;
  /// Fraction of slot-rounds where the unchoked remote was also
  /// unchoking the local peer at that instant (mutual reciprocation).
  double mutuality = 0.0;
  /// Mutuality a random assignment would produce: the time-averaged
  /// probability that an arbitrary connected remote unchokes us.
  double null_mutuality = 0.0;

  /// Equilibrium strength: observed vs random mutuality (>1 = the choke
  /// algorithm forms stable reciprocation pairs).
  [[nodiscard]] double mutuality_lift() const {
    return null_mutuality > 0.0 ? mutuality / null_mutuality : 0.0;
  }
};

/// Observer computing MarketStats for the peer it is attached to.
class ChokeMarketLog final : public peer::PeerObserver {
 public:
  void on_start(sim::SimTime t) override;
  void on_peer_joined(sim::SimTime t, peer::PeerId remote) override;
  void on_peer_left(sim::SimTime t, peer::PeerId remote) override;
  void on_remote_choke_change(sim::SimTime t, peer::PeerId remote,
                              bool unchoked) override;
  void on_choke_round(sim::SimTime t, bool seed_state,
                      const std::vector<peer::PeerId>& unchoked) override;
  void on_became_seed(sim::SimTime t) override;

  /// Closes open tenures/intervals and returns the statistics.
  [[nodiscard]] MarketStats finalize(double t);

 private:
  struct RemoteState {
    bool in_set = false;
    bool unchokes_us = false;
    double last_flush = 0.0;
    double in_set_time = 0.0;
    double unchokes_us_time = 0.0;
    /// Consecutive leecher-state rounds this remote has been in our
    /// unchoked set (0 = currently choked).
    std::uint64_t tenure = 0;
  };

  void flush(RemoteState& state, double t);

  std::map<peer::PeerId, RemoteState> remotes_;
  MarketStats stats_;
  std::uint64_t mutual_slot_rounds_ = 0;
  bool local_seed_ = false;
};

}  // namespace swarmlab::instrument
