#include "instrument/samplers.h"

namespace swarmlab::instrument {

AvailabilitySampler::AvailabilitySampler(sim::Simulation& sim,
                                         const peer::Peer& peer,
                                         double interval)
    : sim_(sim), peer_(peer), interval_(interval) {
  tick();
}

AvailabilitySampler::~AvailabilitySampler() { stop(); }

void AvailabilitySampler::stop() {
  stopped_ = true;
  if (event_ != 0) {
    sim_.cancel(event_);
    event_ = 0;
  }
}

void AvailabilitySampler::tick() {
  if (stopped_) return;
  const double t = sim_.now();
  // Sample only while the peer is in the torrent; keep the timer alive
  // so sampling begins when the peer joins later.
  if (peer_.active()) {
    const core::AvailabilityMap& avail = peer_.availability();
    min_.add(t, avail.min_copies());
    mean_.add(t, avail.mean_copies());
    max_.add(t, avail.max_copies());
    rarest_.add(t, avail.rarest_set_size());
    peers_.add(t, static_cast<double>(peer_.peer_set_size()));
  }
  event_ = sim_.schedule_in(interval_, [this] { tick(); });
}

RateSampler::RateSampler(sim::Simulation& sim, const peer::Peer& peer,
                         double interval)
    : sim_(sim), peer_(peer), interval_(interval) {
  tick();
}

RateSampler::~RateSampler() { stop(); }

void RateSampler::stop() {
  stopped_ = true;
  if (event_ != 0) {
    sim_.cancel(event_);
    event_ = 0;
  }
}

void RateSampler::tick() {
  if (stopped_) return;
  const double t = sim_.now();
  if (peer_.active()) {
    double down = 0.0;
    double up = 0.0;
    double unchoked = 0.0;
    for (const peer::PeerId remote : peer_.connected_peers()) {
      const peer::Connection* conn = peer_.connection(remote);
      if (conn == nullptr) continue;
      down += conn->download_rate.rate(t);
      up += conn->upload_rate.rate(t);
      if (!conn->am_choking) unchoked += 1.0;
    }
    down_.add(t, down);
    up_.add(t, up);
    unchoked_.add(t, unchoked);
  }
  event_ = sim_.schedule_in(interval_, [this] { tick(); });
}

}  // namespace swarmlab::instrument
