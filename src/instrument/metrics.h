// Central metrics registry for swarm-scope observability: counters,
// gauges, fixed-bucket histograms and bounded ring-buffer time series,
// addressed by stable integer ids assigned in registration order. The
// registry is a passive store — it never schedules events or draws
// randomness — so any instrument recording into it cannot perturb a
// simulated trajectory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stats/timeseries.h"

namespace swarmlab::instrument {

/// Stable metric handle: the index of the metric in registration order.
using MetricId = std::uint32_t;

/// Sentinel returned by find() for unknown names.
inline constexpr MetricId kNoMetric = ~MetricId{0};

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kSeries };

  struct Metric {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;                  ///< counter total / gauge level
    std::vector<double> bounds;          ///< histogram upper bounds
    std::vector<std::uint64_t> counts;   ///< bounds.size()+1 (+inf bucket)
    std::vector<stats::Sample> ring;     ///< series storage (capacity fixed)
    std::size_t capacity = 0;            ///< series ring capacity
    std::size_t head = 0;                ///< next ring write slot
    std::uint64_t total = 0;             ///< observations / recorded samples
  };

  /// Registration. Ids are dense and never recycled; re-registering an
  /// existing name with the same kind returns the existing id (so
  /// lazily-created metrics are cheap), a kind mismatch returns
  /// kNoMetric.
  MetricId counter(std::string name);
  MetricId gauge(std::string name);
  /// `upper_bounds` must be strictly increasing; an implicit +inf
  /// bucket is appended, so counts() has upper_bounds.size()+1 entries.
  MetricId histogram(std::string name, std::vector<double> upper_bounds);
  /// Bounded (time, value) series; once `capacity` samples are held the
  /// oldest are overwritten and counted in dropped().
  MetricId series(std::string name, std::size_t capacity = 512);

  [[nodiscard]] MetricId find(std::string_view name) const;

  // Recording. Ids must come from this registry; kind mismatches are
  // ignored (observability must never crash the simulation).
  void add(MetricId id, double delta = 1.0);
  void set(MetricId id, double value);
  void observe(MetricId id, double value);
  void record(MetricId id, double time, double value);

  // Queries.
  [[nodiscard]] double value(MetricId id) const;
  [[nodiscard]] const std::vector<double>& bounds(MetricId id) const;
  [[nodiscard]] const std::vector<std::uint64_t>& counts(MetricId id) const;
  /// Ring contents in chronological order (oldest surviving first).
  [[nodiscard]] std::vector<stats::Sample> samples(MetricId id) const;
  /// Samples lost to ring wrap-around (series) — 0 for other kinds.
  [[nodiscard]] std::uint64_t dropped(MetricId id) const;

  [[nodiscard]] const std::vector<Metric>& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t size() const { return metrics_.size(); }

 private:
  MetricId intern(std::string name, Kind kind);
  [[nodiscard]] Metric* slot(MetricId id, Kind kind);
  [[nodiscard]] const Metric* slot(MetricId id, Kind kind) const;

  std::vector<Metric> metrics_;
};

}  // namespace swarmlab::instrument
