#include "instrument/choke_market.h"

#include <algorithm>

namespace swarmlab::instrument {

void ChokeMarketLog::flush(RemoteState& state, double t) {
  const double dt = t - state.last_flush;
  if (dt <= 0.0) return;
  state.last_flush = t;
  if (!state.in_set || local_seed_) return;
  state.in_set_time += dt;
  if (state.unchokes_us) state.unchokes_us_time += dt;
}

void ChokeMarketLog::on_start(sim::SimTime /*t*/) {}

void ChokeMarketLog::on_peer_joined(sim::SimTime t, peer::PeerId remote) {
  RemoteState& s = remotes_[remote];
  flush(s, t);
  s.in_set = true;
  s.unchokes_us = false;
  s.last_flush = t;
}

void ChokeMarketLog::on_peer_left(sim::SimTime t, peer::PeerId remote) {
  RemoteState& s = remotes_[remote];
  flush(s, t);
  s.in_set = false;
  s.unchokes_us = false;
  if (s.tenure > 0) {
    stats_.tenures.push_back(static_cast<double>(s.tenure));
    s.tenure = 0;
  }
}

void ChokeMarketLog::on_remote_choke_change(sim::SimTime t,
                                            peer::PeerId remote,
                                            bool unchoked) {
  RemoteState& s = remotes_[remote];
  flush(s, t);
  s.unchokes_us = unchoked;
}

void ChokeMarketLog::on_choke_round(
    sim::SimTime t, bool seed_state,
    const std::vector<peer::PeerId>& unchoked) {
  if (seed_state) return;  // the market analysis targets leecher state
  ++stats_.rounds;
  const std::set<peer::PeerId> selected(unchoked.begin(), unchoked.end());
  for (auto& [remote, s] : remotes_) {
    flush(s, t);
    const bool held = s.in_set && selected.contains(remote);
    if (held) {
      ++s.tenure;
      ++stats_.slot_rounds;
      if (s.unchokes_us) ++mutual_slot_rounds_;
    } else if (s.tenure > 0) {
      stats_.tenures.push_back(static_cast<double>(s.tenure));
      s.tenure = 0;
    }
  }
}

void ChokeMarketLog::on_became_seed(sim::SimTime t) {
  for (auto& [remote, s] : remotes_) {
    flush(s, t);
    if (s.tenure > 0) {
      stats_.tenures.push_back(static_cast<double>(s.tenure));
      s.tenure = 0;
    }
  }
  local_seed_ = true;
}

MarketStats ChokeMarketLog::finalize(double t) {
  double in_set_total = 0.0;
  double unchoked_us_total = 0.0;
  for (auto& [remote, s] : remotes_) {
    flush(s, t);
    if (s.tenure > 0) {
      stats_.tenures.push_back(static_cast<double>(s.tenure));
      s.tenure = 0;
    }
    in_set_total += s.in_set_time;
    unchoked_us_total += s.unchokes_us_time;
  }
  MarketStats out = stats_;
  if (!out.tenures.empty()) {
    double sum = 0.0;
    for (const double v : out.tenures) {
      sum += v;
      out.max_tenure = std::max(out.max_tenure, v);
    }
    out.mean_tenure = sum / static_cast<double>(out.tenures.size());
  }
  out.mutuality = out.slot_rounds > 0
                      ? static_cast<double>(mutual_slot_rounds_) /
                            static_cast<double>(out.slot_rounds)
                      : 0.0;
  out.null_mutuality =
      in_set_total > 0.0 ? unchoked_us_total / in_set_total : 0.0;
  return out;
}

}  // namespace swarmlab::instrument
