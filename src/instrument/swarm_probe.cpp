#include "instrument/swarm_probe.h"

#include <cmath>
#include <string>

#include "core/availability.h"
#include "peer/peer.h"

namespace swarmlab::instrument {

namespace {

// Normalized Shannon entropy of the piece-copy distribution: 1.0 when
// every piece is equally replicated (the rarest-first ideal), lower when
// replication is skewed toward a few hot pieces.
double replication_entropy(const core::AvailabilityMap& avail) {
  const std::uint32_t n = avail.num_pieces();
  if (n <= 1) return 1.0;
  double total = 0.0;
  for (std::uint32_t p = 0; p < n; ++p) total += avail.copies(p);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (std::uint32_t p = 0; p < n; ++p) {
    const double c = avail.copies(p);
    if (c > 0.0) {
      const double frac = c / total;
      h -= frac * std::log(frac);
    }
  }
  return h / std::log(static_cast<double>(n));
}

std::string class_series_name(double upload_capacity) {
  return "upload_util_" +
         std::to_string(static_cast<std::uint64_t>(upload_capacity)) + "B";
}

}  // namespace

SwarmProbe::SwarmProbe(MetricsRegistry& registry, std::uint32_t num_pieces,
                       Options opts)
    : registry_(registry), num_pieces_(num_pieces), opts_(opts) {
  c_msgs_sent_ = registry_.counter("messages_sent");
  c_msgs_recv_ = registry_.counter("messages_received");
  c_blocks_recv_ = registry_.counter("blocks_received");
  c_blocks_sent_ = registry_.counter("blocks_uploaded");
  c_bytes_down_ = registry_.counter("bytes_downloaded");
  c_bytes_up_ = registry_.counter("bytes_uploaded");
  c_pieces_done_ = registry_.counter("pieces_completed");
  c_pieces_failed_ = registry_.counter("pieces_failed");
  c_joins_ = registry_.counter("peer_joins");
  c_leaves_ = registry_.counter("peer_leaves");
  c_unchokes_ = registry_.counter("unchokes");
  c_chokes_ = registry_.counter("chokes");
  c_rounds_ = registry_.counter("choke_rounds");
  c_end_games_ = registry_.counter("end_games");
  c_became_seeds_ = registry_.counter("became_seeds");
  c_starts_ = registry_.counter("peers_started");
  c_stops_ = registry_.counter("peers_stopped");
  g_tracked_ = registry_.gauge("tracked_peers");
  h_tenure_ = registry_.histogram("unchoke_tenure_rounds",
                                  {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                                   128.0});
  const std::size_t cap = opts_.series_capacity;
  s_entropy_ = registry_.series("replication_entropy", cap);
  s_churn_ = registry_.series("choke_churn", cap);
  s_interested_ = registry_.series("interested_occupancy", cap);
  s_unchoked_ = registry_.series("unchoked_occupancy", cap);
  s_copies_min_ = registry_.series("copies_min", cap);
  s_copies_mean_ = registry_.series("copies_mean", cap);
  s_copies_max_ = registry_.series("copies_max", cap);
  s_rarest_ = registry_.series("rarest_set", cap);
  s_peer_set_ = registry_.series("peer_set", cap);
}

SwarmProbe::PeerState& SwarmProbe::ensure(peer::PeerId self) {
  auto it = states_.find(self);
  if (it == states_.end()) {
    it = states_.emplace(self, PeerState{}).first;
    // Detail logs go to the first detail_peer_cap tracked peers
    // (deterministic — first-callback order — and no RNG); later peers
    // get counting-only state.
    if (opts_.per_peer_detail &&
        (opts_.detail_peer_cap == 0 ||
         detailed_peers_ < opts_.detail_peer_cap)) {
      ++detailed_peers_;
      it->second.log = std::make_unique<LocalPeerLog>(num_pieces_);
      it->second.market = std::make_unique<ChokeMarketLog>();
    }
  }
  return it->second;
}

void SwarmProbe::drop_cells(PeerState& st) {
  for (const auto& [remote, cell] : st.cells) {
    --total_cells_;
    if (cell.remote_interested) --interested_cells_;
    if (cell.local_unchoked) --unchoked_cells_;
  }
  st.cells.clear();
}

void SwarmProbe::maybe_sample(double t) {
  if (t + 1e-12 < next_sample_) return;
  sample(t);
  const double period =
      opts_.sampling_period > 0.0 ? opts_.sampling_period : 1.0;
  while (next_sample_ <= t) next_sample_ += period;
}

void SwarmProbe::sample(double t) {
  registry_.set(g_tracked_, static_cast<double>(states_.size()));
  if (global_ != nullptr) {
    registry_.record(s_entropy_, t, replication_entropy(*global_));
  }
  registry_.record(s_churn_, t,
                   static_cast<double>(window_unchokes_ + window_chokes_));
  const double cells = static_cast<double>(total_cells_);
  registry_.record(s_interested_, t,
                   cells > 0.0 ? interested_cells_ / cells : 0.0);
  registry_.record(s_unchoked_, t,
                   cells > 0.0 ? unchoked_cells_ / cells : 0.0);

  if (resolver_) {
    // Focus-peer availability view (the paper's instrumented client).
    const peer::PeerId focus = focus_ != peer::kNoPeer
                                   ? focus_
                                   : (states_.empty() ? peer::kNoPeer
                                                      : states_.begin()->first);
    if (const peer::Peer* p = focus != peer::kNoPeer ? resolver_(focus)
                                                     : nullptr;
        p != nullptr && p->active()) {
      const core::AvailabilityMap& avail = p->availability();
      registry_.record(s_copies_min_, t, avail.min_copies());
      registry_.record(s_copies_mean_, t, avail.mean_copies());
      registry_.record(s_copies_max_, t, avail.max_copies());
      registry_.record(s_rarest_, t, avail.rarest_set_size());
      registry_.record(s_peer_set_, t,
                       static_cast<double>(p->peer_set_size()));
    }

    // Per-capacity-class upload utilization over the closed window.
    const double dt = t - last_sample_t_;
    if (dt > 0.0) {
      std::map<std::uint64_t, std::pair<double, double>> classes;  // bytes,cap
      for (auto& [id, st] : states_) {
        if (!st.started) continue;
        const peer::Peer* p = resolver_(id);
        if (p == nullptr) continue;
        const double cap = p->config().upload_capacity;
        if (cap <= 0.0) continue;
        auto& cls = classes[static_cast<std::uint64_t>(cap)];
        cls.first += static_cast<double>(st.window_up_bytes);
        cls.second += cap;
      }
      for (const auto& [cap_key, cls] : classes) {
        const MetricId sid = registry_.series(
            class_series_name(static_cast<double>(cap_key)),
            opts_.series_capacity);
        registry_.record(sid, t, cls.first / (cls.second * dt));
      }
    }
  }

  for (auto& [id, st] : states_) st.window_up_bytes = 0;
  window_unchokes_ = 0;
  window_chokes_ = 0;
  last_sample_t_ = t;
}

void SwarmProbe::finalize(double t) {
  if (finalized_) return;
  finalized_ = true;
  sample(t);
  for (auto& [id, st] : states_) {
    if (st.log) st.log->finalize(t);
    if (st.market) {
      st.stats = st.market->finalize(t);
      for (double tenure : st.stats.tenures) {
        registry_.observe(h_tenure_, tenure);
      }
    }
  }
}

const LocalPeerLog* SwarmProbe::peer_log(peer::PeerId id) const {
  const auto it = states_.find(id);
  return it != states_.end() ? it->second.log.get() : nullptr;
}

MarketStats SwarmProbe::market_stats(peer::PeerId id) const {
  const auto it = states_.find(id);
  return it != states_.end() ? it->second.stats : MarketStats{};
}

UnchokeCorrelation SwarmProbe::unchoke_correlation(peer::PeerId id,
                                                   bool seed_state) const {
  const auto it = states_.find(id);
  if (it == states_.end() || !it->second.log) return UnchokeCorrelation{};
  return seed_state ? analyze_unchoke_correlation_seed(*it->second.log)
                    : analyze_unchoke_correlation_leecher(*it->second.log);
}

// --- SwarmObserver callbacks ----------------------------------------------

void SwarmProbe::on_start(peer::PeerId self, sim::SimTime t) {
  maybe_sample(t);
  registry_.add(c_starts_);
  PeerState& st = ensure(self);
  st.started = true;
  if (st.log) st.log->on_start(t);
  if (st.market) st.market->on_start(t);
}

void SwarmProbe::on_stop(peer::PeerId self, sim::SimTime t) {
  maybe_sample(t);
  registry_.add(c_stops_);
  PeerState& st = ensure(self);
  st.started = false;
  drop_cells(st);
  if (st.log) st.log->on_stop(t);
  if (st.market) st.market->on_stop(t);
}

void SwarmProbe::on_peer_joined(peer::PeerId self, sim::SimTime t,
                                peer::PeerId remote) {
  maybe_sample(t);
  registry_.add(c_joins_);
  PeerState& st = ensure(self);
  if (st.cells.emplace(remote, Cell{}).second) ++total_cells_;
  if (st.log) st.log->on_peer_joined(t, remote);
  if (st.market) st.market->on_peer_joined(t, remote);
}

void SwarmProbe::on_peer_left(peer::PeerId self, sim::SimTime t,
                              peer::PeerId remote) {
  maybe_sample(t);
  registry_.add(c_leaves_);
  PeerState& st = ensure(self);
  const auto it = st.cells.find(remote);
  if (it != st.cells.end()) {
    --total_cells_;
    if (it->second.remote_interested) --interested_cells_;
    if (it->second.local_unchoked) --unchoked_cells_;
    st.cells.erase(it);
  }
  if (st.log) st.log->on_peer_left(t, remote);
  if (st.market) st.market->on_peer_left(t, remote);
}

void SwarmProbe::on_message_sent(peer::PeerId self, sim::SimTime t,
                                 peer::PeerId to, const wire::Message& msg) {
  maybe_sample(t);
  registry_.add(c_msgs_sent_);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_message_sent(t, to, msg);
  if (st.market) st.market->on_message_sent(t, to, msg);
}

void SwarmProbe::on_message_received(peer::PeerId self, sim::SimTime t,
                                     peer::PeerId from,
                                     const wire::Message& msg) {
  maybe_sample(t);
  registry_.add(c_msgs_recv_);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_message_received(t, from, msg);
  if (st.market) st.market->on_message_received(t, from, msg);
}

void SwarmProbe::on_interest_change(peer::PeerId self, sim::SimTime t,
                                    peer::PeerId remote, bool interested) {
  maybe_sample(t);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_interest_change(t, remote, interested);
  if (st.market) st.market->on_interest_change(t, remote, interested);
}

void SwarmProbe::on_remote_interest_change(peer::PeerId self, sim::SimTime t,
                                           peer::PeerId remote,
                                           bool interested) {
  maybe_sample(t);
  PeerState& st = ensure(self);
  const auto it = st.cells.find(remote);
  if (it != st.cells.end() && it->second.remote_interested != interested) {
    it->second.remote_interested = interested;
    interested ? ++interested_cells_ : --interested_cells_;
  }
  if (st.log) st.log->on_remote_interest_change(t, remote, interested);
  if (st.market) st.market->on_remote_interest_change(t, remote, interested);
}

void SwarmProbe::on_local_choke_change(peer::PeerId self, sim::SimTime t,
                                       peer::PeerId remote, bool unchoked) {
  maybe_sample(t);
  registry_.add(unchoked ? c_unchokes_ : c_chokes_);
  unchoked ? ++window_unchokes_ : ++window_chokes_;
  PeerState& st = ensure(self);
  const auto it = st.cells.find(remote);
  if (it != st.cells.end() && it->second.local_unchoked != unchoked) {
    it->second.local_unchoked = unchoked;
    unchoked ? ++unchoked_cells_ : --unchoked_cells_;
  }
  if (st.log) st.log->on_local_choke_change(t, remote, unchoked);
  if (st.market) st.market->on_local_choke_change(t, remote, unchoked);
}

void SwarmProbe::on_remote_choke_change(peer::PeerId self, sim::SimTime t,
                                        peer::PeerId remote, bool unchoked) {
  maybe_sample(t);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_remote_choke_change(t, remote, unchoked);
  if (st.market) st.market->on_remote_choke_change(t, remote, unchoked);
}

void SwarmProbe::on_choke_round(peer::PeerId self, sim::SimTime t,
                                bool seed_state,
                                const std::vector<peer::PeerId>& unchoked) {
  maybe_sample(t);
  registry_.add(c_rounds_);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_choke_round(t, seed_state, unchoked);
  if (st.market) st.market->on_choke_round(t, seed_state, unchoked);
}

void SwarmProbe::on_block_received(peer::PeerId self, sim::SimTime t,
                                   peer::PeerId from, wire::BlockRef block,
                                   std::uint32_t bytes) {
  maybe_sample(t);
  registry_.add(c_blocks_recv_);
  registry_.add(c_bytes_down_, bytes);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_block_received(t, from, block, bytes);
  if (st.market) st.market->on_block_received(t, from, block, bytes);
}

void SwarmProbe::on_block_uploaded(peer::PeerId self, sim::SimTime t,
                                   peer::PeerId to, wire::BlockRef block,
                                   std::uint32_t bytes) {
  maybe_sample(t);
  registry_.add(c_blocks_sent_);
  registry_.add(c_bytes_up_, bytes);
  PeerState& st = ensure(self);
  st.window_up_bytes += bytes;
  if (st.log) st.log->on_block_uploaded(t, to, block, bytes);
  if (st.market) st.market->on_block_uploaded(t, to, block, bytes);
}

void SwarmProbe::on_piece_complete(peer::PeerId self, sim::SimTime t,
                                   wire::PieceIndex piece) {
  maybe_sample(t);
  registry_.add(c_pieces_done_);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_piece_complete(t, piece);
  if (st.market) st.market->on_piece_complete(t, piece);
}

void SwarmProbe::on_piece_failed(peer::PeerId self, sim::SimTime t,
                                 wire::PieceIndex piece) {
  maybe_sample(t);
  registry_.add(c_pieces_failed_);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_piece_failed(t, piece);
  if (st.market) st.market->on_piece_failed(t, piece);
}

void SwarmProbe::on_end_game(peer::PeerId self, sim::SimTime t) {
  maybe_sample(t);
  registry_.add(c_end_games_);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_end_game(t);
  if (st.market) st.market->on_end_game(t);
}

void SwarmProbe::on_became_seed(peer::PeerId self, sim::SimTime t) {
  maybe_sample(t);
  registry_.add(c_became_seeds_);
  PeerState& st = ensure(self);
  if (st.log) st.log->on_became_seed(t);
  if (st.market) st.market->on_became_seed(t);
}

}  // namespace swarmlab::instrument
