// Scenario configuration: synthetic stand-ins for the paper's 26 live
// torrents (Table I) plus ablation scenarios.
//
// A scenario describes a torrent's population, capacities and dynamics;
// ScenarioRunner builds the Swarm, injects the instrumented local peer,
// and drives arrivals/departures.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "fault/fault_plan.h"
#include "net/backend.h"
#include "net/types.h"
#include "peer/observer.h"
#include "peer/peer.h"
#include "sim/simulation.h"
#include "swarm/swarm.h"
#include "wire/geometry.h"

namespace swarmlab::swarm {

/// A class of leecher access links: `fraction` of leechers get these
/// capacities (bytes/second).
struct CapacityClass {
  double fraction = 1.0;
  double up = 32.0 * 1024;
  double down = 256.0 * 1024;
};

/// Default heterogeneous leecher mix (asymmetric residential links of the
/// paper's era; download ~8x upload).
std::vector<CapacityClass> default_capacity_classes();

/// How a scenario run is observed (see docs/observability.md). The
/// default plan reproduces the paper's methodology — one instrumented
/// local peer — and is guaranteed not to change any trajectory;
/// widening the scope attaches a strictly passive SwarmProbe, which is
/// equally trajectory-neutral (enforced by the digest-under-observation
/// test).
struct ObservationPlan {
  enum class Scope : std::uint8_t {
    kLocal,    ///< the local peer only (the paper's §III-C setup)
    kSampled,  ///< local peer + the first `sample_k` peers spawned
    kAll,      ///< every peer, current and future
  };
  Scope scope = Scope::kLocal;
  /// Peer cap for Scope::kSampled. Selection is "first K spawned" —
  /// deterministic, no RNG draws.
  std::uint32_t sample_k = 8;
  /// SwarmProbe time-series sampling period (seconds).
  double sampling_period = 20.0;
  /// Cap on per-peer detail logs inside the SwarmProbe (0 = unlimited).
  /// Counters, matrix occupancy and every time series still cover ALL
  /// probed peers; only LocalPeerLog/ChokeMarketLog allocation is
  /// limited to the first N tracked. Mega-swarm kAll/kSampled runs set
  /// this so probe memory is O(cap) rather than O(population).
  std::uint32_t detail_peer_cap = 0;

  enum class TraceFormat : std::uint8_t { kNone, kCsv, kJsonl };
  TraceFormat trace_format = TraceFormat::kNone;
  /// Where run_scenario_job writes the local peer's trace (empty =
  /// keep in memory only).
  std::string trace_path;
  /// TraceWriter event cap (0 = unlimited); overflow is accounted, not
  /// silent (sentinel CSV row / JSONL trailer).
  std::size_t trace_max_events = 200000;

  /// True when a swarm-scope probe should be built for this plan.
  [[nodiscard]] bool swarm_scope() const { return scope != Scope::kLocal; }
};

/// Full description of one experiment's torrent.
struct ScenarioConfig {
  std::string name = "scenario";
  int torrent_id = 0;  // Table-I row (0 = custom)

  // --- content ----------------------------------------------------------
  std::uint32_t num_pieces = 128;
  std::uint32_t piece_size = 256 * 1024;
  std::uint32_t block_size = 16 * 1024;

  [[nodiscard]] wire::ContentGeometry geometry() const {
    return wire::ContentGeometry(
        std::uint64_t{num_pieces} * piece_size, piece_size, block_size);
  }

  // --- population at t = 0 ----------------------------------------------
  std::uint32_t initial_seeds = 1;
  std::uint32_t initial_leechers = 50;
  /// Steady-state warm start: initial leechers hold a uniform-random
  /// completion fraction in [warm_min, warm_max]. Cold (transient-state)
  /// torrents set this false so every leecher starts empty.
  bool leechers_warm = false;
  double warm_min = 0.05;
  double warm_max = 0.95;
  /// Fraction of pieces absent from *every* initial peer (dead pieces;
  /// models Table-I torrent 1: zero seeds, incomplete torrent).
  double dead_piece_fraction = 0.0;

  // --- dynamics -----------------------------------------------------------
  double arrival_rate = 0.0;       ///< Poisson leecher arrivals per second
  std::uint32_t max_population = 400;
  /// Mean seeding time after completion before a remote peer departs
  /// (exponential); <= 0 keeps finished peers forever.
  double seed_linger_mean = 900.0;
  bool initial_seeds_stay = true;  ///< initial seeds never depart
  /// Per-second hazard of a remote leecher aborting before completion.
  double leecher_abort_rate = 0.0;
  double free_rider_fraction = 0.0;

  // --- capacities ----------------------------------------------------------
  std::vector<CapacityClass> leecher_classes = default_capacity_classes();
  double initial_seed_upload = 40.0 * 1024;
  double initial_seed_download = net::kUnlimited;

  // --- the instrumented local peer ----------------------------------------
  bool spawn_local_peer = true;
  double local_join_time = 0.0;
  double local_upload = 20.0 * 1024;  ///< paper default cap: 20 kB/s
  double local_download = net::kUnlimited;
  bool local_free_rider = false;

  // --- protocol -------------------------------------------------------------
  core::ProtocolParams remote_params;
  core::ProtocolParams local_params;

  // --- fault injection --------------------------------------------------------
  /// Declarative failure schedule (all-zero by default = no faults).
  /// Executed by a fault::FaultInjector constructed against the runner;
  /// when any fault is enabled the runner turns on liveness timers for
  /// every peer (local and remote) so the swarm can survive it.
  fault::FaultPlan faults;
  /// Tracker-side expiry for members that stop announcing (seconds;
  /// 0 disables). The default is 2.5x the re-announce interval: active
  /// peers refresh every ~1800 s, so only crashed peers ever expire and
  /// fault-free runs are untouched.
  double tracker_member_expiry = 4500.0;

  // --- run control ------------------------------------------------------------
  double control_latency = 0.05;
  double duration = 40000.0;  ///< hard stop (simulated seconds)
  /// Network backend name (net/backend.h registry): "fluid" (max-min
  /// rate model, the default) or "packet" (store-and-forward segments).
  std::string network_backend = net::kDefaultNetworkBackend;
  /// Observation scope / trace format for this run (purely passive).
  ObservationPlan observation;
};

/// Validates a ScenarioConfig before any peer spawns. Returns an empty
/// string when the config is runnable, otherwise a human-actionable
/// message naming the offending field and its value. ScenarioRunner
/// rejects invalid configs by throwing std::invalid_argument, which the
/// batch runner maps to a report-schema `status: failed` entry — an
/// impossible geometry or warm range fails loudly instead of producing
/// silent nonsense.
std::string validate_scenario(const ScenarioConfig& cfg);

/// One Table-I row as published.
struct TorrentSpec {
  int id;
  std::uint32_t seeds;
  std::uint32_t leechers;
  std::uint32_t size_mb;
};

/// The paper's Table I (26 torrents).
const std::array<TorrentSpec, 26>& table1_torrents();

/// Caps applied when scaling Table-I torrents to simulable size.
struct ScaleLimits {
  std::uint32_t max_peers = 240;   ///< concurrent population cap
  std::uint32_t min_leechers = 2;
  std::uint32_t max_pieces = 280;
  std::uint32_t min_pieces = 16;
  std::uint32_t piece_size = 256 * 1024;
  std::uint32_t block_size = 16 * 1024;
  double duration = 40000.0;
};

/// Builds the scenario for Table-I torrent `torrent_id` (1-26), scaled to
/// `limits`. Seed/leecher ratios, warm/cold start (transient vs steady
/// state) and relative content sizes follow the published row.
ScenarioConfig scenario_from_table1(int torrent_id,
                                    const ScaleLimits& limits = {});

/// Owns a Simulation + Swarm built from a ScenarioConfig and drives the
/// scenario's population dynamics.
class ScenarioRunner {
 public:
  /// `local_observer` is attached to the instrumented local peer.
  /// `swarm_observer` (optional) is attached per cfg.observation.scope:
  /// the local peer (kLocal), the local peer plus the first sample_k
  /// spawned (kSampled), or every peer incl. future arrivals (kAll).
  /// Attachment happens before the initial population starts, so
  /// construction-time callbacks (on_start at t=0) are captured.
  ScenarioRunner(ScenarioConfig cfg, std::uint64_t seed,
                 peer::PeerObserver* local_observer = nullptr,
                 peer::SwarmObserver* swarm_observer = nullptr);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] const sim::Simulation& simulation() const { return *sim_; }
  [[nodiscard]] Swarm& swarm() { return *swarm_; }
  [[nodiscard]] const Swarm& swarm() const { return *swarm_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] peer::PeerId local_peer_id() const { return local_id_; }
  [[nodiscard]] peer::Peer& local_peer();
  [[nodiscard]] const peer::Peer& local_peer() const;
  /// Peers spawned as initial seeds (empty for zero-seed scenarios).
  [[nodiscard]] const std::vector<peer::PeerId>& initial_seed_ids() const {
    return initial_seed_ids_;
  }

  /// Runs to the configured duration.
  void run();

  /// Runs until the local peer completes, then `extra` more seconds, all
  /// capped by the configured duration. Returns the stop time.
  double run_until_local_complete(double extra);

 private:
  void spawn_initial_population();
  peer::PeerId spawn_leecher(bool warm);
  void schedule_arrivals();
  void schedule_churn_tick();
  /// Applies cfg.observation.scope to a freshly added peer (kAll is
  /// handled wholesale by ObserverHub::attach_all instead).
  void maybe_observe(peer::PeerId id, bool is_local);

  ScenarioConfig cfg_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Swarm> swarm_;
  peer::PeerObserver* local_observer_;
  peer::SwarmObserver* swarm_observer_ = nullptr;
  std::uint32_t observed_samples_ = 0;
  peer::PeerId local_id_ = peer::kNoPeer;
  std::vector<peer::PeerId> initial_seed_ids_;
  /// Departure deadlines assigned to finished remote peers.
  std::map<peer::PeerId, double> departures_;
  std::vector<bool> dead_pieces_;
  /// Pieces present in the initial distribution (dead pieces excluded);
  /// fixed for the run, so warm-start sampling never rebuilds it.
  std::vector<wire::PieceIndex> alive_pieces_;
};

}  // namespace swarmlab::swarm
