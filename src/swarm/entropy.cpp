#include "swarm/entropy.h"

#include <vector>

namespace swarmlab::swarm {

double swarm_entropy(const Swarm& swarm) {
  // Collect the active leechers' bitfields.
  std::vector<const core::Bitfield*> leechers;
  for (const peer::PeerId id : swarm.peer_ids()) {
    const peer::Peer* p = swarm.find_peer(id);
    if (p == nullptr || !p->active() || p->is_seed()) continue;
    leechers.push_back(&p->have());
  }
  if (leechers.size() < 2) return 1.0;
  std::uint64_t interested = 0;
  std::uint64_t pairs = 0;
  for (std::size_t a = 0; a < leechers.size(); ++a) {
    for (std::size_t b = 0; b < leechers.size(); ++b) {
      if (a == b) continue;
      ++pairs;
      if (leechers[a]->interested_in(*leechers[b])) ++interested;
    }
  }
  return static_cast<double>(interested) / static_cast<double>(pairs);
}

SwarmEntropySampler::SwarmEntropySampler(sim::Simulation& sim,
                                         const Swarm& swarm,
                                         double interval)
    : sim_(sim), swarm_(swarm), interval_(interval) {
  tick();
}

SwarmEntropySampler::~SwarmEntropySampler() { stop(); }

void SwarmEntropySampler::stop() {
  stopped_ = true;
  if (event_ != 0) {
    sim_.cancel(event_);
    event_ = 0;
  }
}

void SwarmEntropySampler::tick() {
  if (stopped_) return;
  series_.add(sim_.now(), swarm_entropy(swarm_));
  event_ = sim_.schedule_in(interval_, [this] { tick(); });
}

}  // namespace swarmlab::swarm
