#include "swarm/entropy.h"

#include <vector>

#include "sim/rng.h"

namespace swarmlab::swarm {

namespace {

/// Active leechers' bitfields, in ascending peer-id order. O(active).
std::vector<const core::Bitfield*> active_leecher_bitfields(
    const Swarm& swarm) {
  std::vector<const core::Bitfield*> leechers;
  for (const peer::PeerId id : swarm.active_peer_ids()) {
    const peer::Peer* p = swarm.find_peer(id);
    if (p == nullptr || !p->active() || p->is_seed()) continue;
    leechers.push_back(&p->have());
  }
  return leechers;
}

/// Ordered-pair interest fraction over a set of bitfields.
double pair_entropy(const std::vector<const core::Bitfield*>& leechers) {
  if (leechers.size() < 2) return 1.0;
  std::uint64_t interested = 0;
  std::uint64_t pairs = 0;
  for (std::size_t a = 0; a < leechers.size(); ++a) {
    for (std::size_t b = 0; b < leechers.size(); ++b) {
      if (a == b) continue;
      ++pairs;
      if (leechers[a]->interested_in(*leechers[b])) ++interested;
    }
  }
  return static_cast<double>(interested) / static_cast<double>(pairs);
}

}  // namespace

double swarm_entropy(const Swarm& swarm) {
  // The ledger maintains the same integer pair count incrementally; the
  // single division below is the only arithmetic either path performs,
  // so the two are numerically identical (verified by the
  // ledger-vs-brute-force equivalence test).
  if (const InterestLedger* ledger = swarm.interest_ledger();
      ledger != nullptr) {
    return ledger->entropy();
  }
  return pair_entropy(active_leecher_bitfields(swarm));
}

double swarm_entropy_sampled(const Swarm& swarm, std::size_t sample_k,
                             sim::Rng& rng) {
  std::vector<const core::Bitfield*> leechers =
      active_leecher_bitfields(swarm);
  if (sample_k == 0 || leechers.size() <= sample_k) {
    // The sample covers everyone: the estimator degenerates to the exact
    // value (no draws needed, matching sample_indices' n == k case
    // consuming draws we would simply discard).
    return pair_entropy(leechers);
  }
  std::vector<const core::Bitfield*> sample;
  sample.reserve(sample_k);
  for (const std::size_t i : rng.sample_indices(leechers.size(), sample_k)) {
    sample.push_back(leechers[i]);
  }
  return pair_entropy(sample);
}

SwarmEntropySampler::SwarmEntropySampler(sim::Simulation& sim,
                                         const Swarm& swarm, Options opts)
    : sim_(sim),
      swarm_(swarm),
      opts_(opts),
      estimator_rng_(sim::fork_seed(opts.seed, 0x5A3Bu)) {
  tick();
}

SwarmEntropySampler::~SwarmEntropySampler() { stop(); }

void SwarmEntropySampler::stop() {
  stopped_ = true;
  if (event_ != 0) {
    sim_.cancel(event_);
    event_ = 0;
  }
}

void SwarmEntropySampler::tick() {
  if (stopped_) return;
  const double value =
      opts_.sample_k == 0
          ? swarm_entropy(swarm_)
          : swarm_entropy_sampled(swarm_, opts_.sample_k, estimator_rng_);
  series_.add(sim_.now(), value);
  event_ = sim_.schedule_in(opts_.interval, [this] { tick(); });
}

}  // namespace swarmlab::swarm
