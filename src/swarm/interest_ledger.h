// Incremental pair-interest ledger: swarm_entropy without the
// O(leechers² × pieces) walk.
//
// The paper's entropy ideal is "each leecher is always interested in any
// other leecher"; swarm_entropy() measures the fraction of ordered
// leecher pairs (a, b) where a is interested in b (b has a piece a
// lacks). The brute-force evaluation recomputes every pair from the
// bitfields at each sample tick; this ledger maintains, for every
// ordered pair, the count of pieces b has that a lacks —
// cnt(a, b) = |have(b) \ have(a)| — updated on membership changes
// (O(leechers × pieces / 64) bitfield joins) and on every HAVE
// (O(leechers) counter bumps), so the entropy read itself is O(1) and
// numerically identical to the brute force (same integer pair count,
// same single division).
//
// Memory is O(leechers²) (2 bytes per ordered pair): exact mode is for
// the populations where per-pair telemetry is affordable (≤ ~2k
// concurrent leechers ≈ 8 MB). Mega-swarm runs use the sampled
// estimator in entropy.h instead — the ledger refuses nothing, but the
// Swarm only feeds it when explicitly enabled, so default runs pay
// zero.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/bitfield.h"
#include "peer/types.h"

namespace swarmlab::swarm {

class InterestLedger {
 public:
  explicit InterestLedger(std::uint32_t num_pieces)
      : num_pieces_(num_pieces) {}

  /// Adds a leecher with its current bitfield. `have` must outlive the
  /// membership (Peer bitfields are stable — peers are heap-allocated
  /// and never move). No-op if already a member.
  void join(peer::PeerId id, const core::Bitfield& have);

  /// Removes a leecher (departure, crash, or completion — a leecher
  /// that becomes a seed leaves the pair set, matching the brute-force
  /// definition). No-op for non-members.
  void leave(peer::PeerId id);

  /// Records that member `id` completed `piece` (its bitfield already
  /// includes the piece). Call once per completed piece, before any
  /// completion-driven leave(). No-op for non-members.
  void on_piece_gain(peer::PeerId id, std::uint32_t piece);

  [[nodiscard]] bool is_member(peer::PeerId id) const {
    return index_.find(id) != index_.end();
  }
  [[nodiscard]] std::size_t num_members() const { return ids_.size(); }

  /// Ordered leecher pairs (a, b) with a interested in b.
  [[nodiscard]] std::uint64_t interested_pairs() const { return interested_; }

  /// The instantaneous swarm entropy: interested / (n (n - 1)); 1.0
  /// when fewer than two leechers are tracked (vacuously ideal).
  /// Identical to swarm_entropy()'s brute-force value.
  [[nodiscard]] double entropy() const {
    const std::uint64_t n = ids_.size();
    if (n < 2) return 1.0;
    return static_cast<double>(interested_) /
           static_cast<double>(n * (n - 1));
  }

 private:
  /// cnt(a, b) for dense member slots a, b — stride is the slot
  /// capacity, rows/columns beyond num_members() are dead.
  [[nodiscard]] std::uint16_t& cnt(std::size_t a, std::size_t b) {
    return counts_[a * capacity_ + b];
  }
  void grow(std::size_t min_capacity);

  std::uint32_t num_pieces_;
  std::size_t capacity_ = 0;
  std::uint64_t interested_ = 0;
  std::vector<peer::PeerId> ids_;              // slot -> peer id
  std::vector<const core::Bitfield*> haves_;   // slot -> bitfield
  std::unordered_map<peer::PeerId, std::size_t> index_;  // id -> slot
  std::vector<std::uint16_t> counts_;  // capacity_ x capacity_, row-major
};

}  // namespace swarmlab::swarm
