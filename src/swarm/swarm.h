// The Swarm: owns every peer in one torrent and implements peer::Fabric —
// control-message routing, block transport over the fluid network,
// connection brokering, and the tracker front end.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/availability.h"
#include "net/network.h"
#include "peer/fabric.h"
#include "peer/observer.h"
#include "peer/peer.h"
#include "sim/simulation.h"
#include "swarm/interest_ledger.h"
#include "swarm/observer_hub.h"
#include "swarm/tracker.h"
#include "wire/geometry.h"

namespace swarmlab::swarm {

/// One torrent's worth of simulated peers.
class Swarm final : public peer::Fabric {
 public:
  /// `network` selects the transport backend; null uses the default
  /// ("fluid", see net/backend.h). The swarm depends only on
  /// net::Network, so registered alternative backends slot in here
  /// without any swarm change.
  Swarm(sim::Simulation& sim, const wire::ContentGeometry& geometry,
        double control_latency = 0.05,
        std::unique_ptr<net::Network> network = nullptr);

  /// Data-plane mode: peers exchange the real content bytes described by
  /// `meta` and verify every completed piece against its SHA-1. Heavier
  /// (blocks are materialized); intended for correctness-focused runs.
  Swarm(sim::Simulation& sim, wire::Metainfo meta,
        double control_latency = 0.05,
        std::unique_ptr<net::Network> network = nullptr);

  // --- peer management --------------------------------------------------

  /// Creates a peer (and its network node). `cfg.id` is assigned by the
  /// swarm and returned. The peer does not join the torrent until
  /// start_peer(). `observer` becomes the peer's first hub attachment;
  /// further subscriptions go through observers().
  peer::PeerId add_peer(peer::PeerConfig cfg,
                        peer::PeerObserver* observer = nullptr);

  /// Observer attachment for any peer (local or remote), per peer or
  /// swarm-wide. Attachment is purely observational — it never changes
  /// a trajectory.
  [[nodiscard]] ObserverHub& observers() { return hub_; }
  [[nodiscard]] const ObserverHub& observers() const { return hub_; }

  /// Joins the torrent now.
  void start_peer(peer::PeerId id);

  /// Leaves the torrent and releases the peer's network node. The Peer
  /// object remains queryable (its final statistics survive).
  void stop_peer(peer::PeerId id);

  /// Abrupt crash (fault injection): like stop_peer but with no Stopped
  /// announce and no disconnect callbacks — remote peers keep ghost
  /// entries until their liveness timers evict them. In-flight transfers
  /// abort silently (the node vanishes). Returns false if the peer was
  /// not active. The Peer object remains queryable.
  bool crash_peer(peer::PeerId id);

  [[nodiscard]] peer::Peer* find_peer(peer::PeerId id);
  [[nodiscard]] const peer::Peer* find_peer(peer::PeerId id) const;

  /// Ids of all peers ever added (including departed ones).
  [[nodiscard]] std::vector<peer::PeerId> peer_ids() const;

  /// Ids of the peers currently in the torrent, ascending. O(active):
  /// the list carries tombstones from departures and compacts them
  /// lazily, so callers that tick over the live population (churn,
  /// samplers, fault plans) never pay for the swarm's full history.
  [[nodiscard]] const std::vector<peer::PeerId>& active_peer_ids() const;

  /// Number of peers currently in the torrent. O(1).
  [[nodiscard]] std::size_t active_peers() const { return active_count_; }

  /// Pre-sizes the slot table for an expected total population (peers
  /// ever added, not just concurrent) so mega-swarm arrival storms do
  /// not re-allocate the table log(n) times mid-run.
  void reserve_peers(std::size_t expected_total);

  /// Opt-in incremental pair-interest ledger (see interest_ledger.h):
  /// once enabled, swarm_entropy() reads it in O(1) instead of walking
  /// every leecher pair. Current active leechers are enrolled
  /// immediately; membership then tracks start/stop/crash/completion.
  /// Purely observational (no events, no RNG) — trajectories are
  /// byte-identical with or without it. O(leechers²) memory: meant for
  /// per-pair-affordable populations, not 10k-leecher swarms (those use
  /// swarm_entropy_sampled()).
  void enable_interest_ledger();
  [[nodiscard]] const InterestLedger* interest_ledger() const {
    return ledger_.get();
  }

  [[nodiscard]] Tracker& tracker() { return tracker_; }
  [[nodiscard]] const Tracker& tracker() const { return tracker_; }
  [[nodiscard]] const wire::ContentGeometry& geometry() const { return geo_; }

  /// True when every piece has at least one copy among active peers — the
  /// torrent is alive (§II-B).
  [[nodiscard]] bool torrent_alive() const;

  // --- fault injection -----------------------------------------------------

  /// Per-delivery control-message fault hook (fault::FaultInjector).
  /// Called once per (message, receiver); returns false to drop the
  /// delivery, or true to deliver after an additional `*extra_delay`
  /// seconds (preset to 0). Unset in fault-free runs — the batched
  /// broadcast fast path and single-lambda sends stay byte-identical.
  using ControlFault = std::function<bool(double* extra_delay)>;
  void set_control_fault(ControlFault hook) {
    control_fault_ = std::move(hook);
  }

  // --- Fabric -------------------------------------------------------------

  sim::Simulation& simulation() override { return sim_; }
  net::Network& network() override { return *net_; }
  void send_control(peer::PeerId from, peer::PeerId to,
                    wire::Message msg) override;
  void broadcast_have(peer::PeerId from, wire::PieceIndex piece) override;
  net::FlowId send_block(peer::PeerId from, peer::PeerId to,
                         wire::BlockRef block) override;
  void connect(peer::PeerId from, peer::PeerId to) override;
  void disconnect(peer::PeerId a, peer::PeerId b) override;
  peer::AnnounceResult announce(peer::PeerId who,
                                peer::AnnounceEvent event) override;
  const core::AvailabilityMap& global_availability() const override {
    return global_availability_;
  }
  const wire::Metainfo* metainfo() const override {
    return meta_.has_value() ? &*meta_ : nullptr;
  }

 private:
  struct Slot {
    std::unique_ptr<peer::Peer> peer;
    net::NodeId node = 0;
    bool in_torrent = false;  // between start_peer and stop_peer
    bool counted_in_global = false;
  };

  /// Peer lookup for active slots only.
  peer::Peer* active_peer(peer::PeerId id);

  /// Membership bookkeeping shared by start/stop/crash.
  void mark_active(peer::PeerId id);
  void mark_inactive(peer::PeerId id);

  /// O(1) slot lookup. PeerIds are dense (assigned 1, 2, ... by
  /// add_peer and never recycled), so the slot table is a plain vector
  /// indexed by id - 1; departed peers keep their slot with
  /// in_torrent = false.
  [[nodiscard]] Slot* slot_of(peer::PeerId id) {
    return id >= 1 && id <= slots_.size() ? &slots_[id - 1] : nullptr;
  }
  [[nodiscard]] const Slot* slot_of(peer::PeerId id) const {
    return id >= 1 && id <= slots_.size() ? &slots_[id - 1] : nullptr;
  }

  sim::Simulation& sim_;
  wire::ContentGeometry geo_;
  std::optional<wire::Metainfo> meta_;  // engaged in data-plane mode
  std::unique_ptr<net::Network> net_;
  Tracker tracker_;
  ObserverHub hub_;
  std::vector<Slot> slots_;  // index = PeerId - 1
  /// Active ids in ascending order plus tombstones (departed ids not
  /// yet compacted away); mutable so const iteration can compact.
  mutable std::vector<peer::PeerId> active_ids_;
  mutable std::size_t active_tombstones_ = 0;
  std::size_t active_count_ = 0;
  core::AvailabilityMap global_availability_;
  peer::PeerId next_id_ = 1;
  std::unique_ptr<InterestLedger> ledger_;  // null unless enabled
  ControlFault control_fault_;  // null in fault-free runs
};

}  // namespace swarmlab::swarm
