// Swarm-wide entropy: the bird's-eye complement to the paper's
// peer-oriented Fig. 1. The paper defines ideal entropy as "each leecher
// is always interested in any other leecher"; with the simulator's global
// view we can measure the instantaneous fraction of ordered leecher pairs
// (a, b) where a is interested in b — no sampling through one peer's lens.
#pragma once

#include "stats/timeseries.h"
#include "swarm/swarm.h"

namespace swarmlab::swarm {

/// Instantaneous swarm entropy: over all ordered pairs of active
/// leechers (a, b), the fraction where a is interested in b (b has a
/// piece a lacks). 1.0 = ideal entropy. Returns 1.0 when fewer than two
/// leechers are active (vacuously ideal).
double swarm_entropy(const Swarm& swarm);

/// Periodic sampler for swarm_entropy (O(leechers^2 * pieces) per tick —
/// use intervals of tens of seconds).
class SwarmEntropySampler {
 public:
  SwarmEntropySampler(sim::Simulation& sim, const Swarm& swarm,
                      double interval = 60.0);
  ~SwarmEntropySampler();

  SwarmEntropySampler(const SwarmEntropySampler&) = delete;
  SwarmEntropySampler& operator=(const SwarmEntropySampler&) = delete;

  void stop();

  [[nodiscard]] const stats::TimeSeries& entropy() const { return series_; }

 private:
  void tick();

  sim::Simulation& sim_;
  const Swarm& swarm_;
  double interval_;
  sim::EventId event_ = 0;
  bool stopped_ = false;
  stats::TimeSeries series_;
};

}  // namespace swarmlab::swarm
