// Swarm-wide entropy: the bird's-eye complement to the paper's
// peer-oriented Fig. 1. The paper defines ideal entropy as "each leecher
// is always interested in any other leecher"; with the simulator's global
// view we can measure the instantaneous fraction of ordered leecher pairs
// (a, b) where a is interested in b — no sampling through one peer's lens.
//
// Three evaluation strategies, one definition:
//  * swarm_entropy() — exact. Reads the swarm's incremental
//    InterestLedger in O(1) when enabled (Swarm::enable_interest_ledger),
//    otherwise falls back to the brute-force O(active-leechers² × pieces)
//    pair walk. Identical values either way (the ledger maintains the
//    same integer pair count).
//  * swarm_entropy_sampled() — estimator for mega swarms, where even the
//    ledger's O(leechers²) memory is unaffordable: measures the pair
//    fraction over a uniform sample of K leechers drawn from a private
//    Rng (never the simulation's — sampling cannot perturb a trajectory).
//  * SwarmEntropySampler — periodic time series over either strategy.
#pragma once

#include <cstdint>

#include "stats/timeseries.h"
#include "swarm/swarm.h"

namespace swarmlab::swarm {

/// Instantaneous swarm entropy: over all ordered pairs of active
/// leechers (a, b), the fraction where a is interested in b (b has a
/// piece a lacks). 1.0 = ideal entropy. Returns 1.0 when fewer than two
/// leechers are active (vacuously ideal). O(1) when the swarm's
/// interest ledger is enabled; brute force otherwise.
double swarm_entropy(const Swarm& swarm);

/// Sampled estimator: swarm entropy measured over min(sample_k, active
/// leechers) leechers chosen uniformly by `rng`. Pass a PRIVATE Rng
/// (e.g. seeded with sim::fork_seed(seed, tick)) — drawing from the
/// simulation's Rng would change the trajectory. Exact (and equal to
/// swarm_entropy) whenever sample_k covers every active leecher.
double swarm_entropy_sampled(const Swarm& swarm, std::size_t sample_k,
                             sim::Rng& rng);

/// Periodic sampler for swarm_entropy. Default is the exact value
/// (O(1) per tick when the swarm's ledger is enabled); setting
/// Options::sample_k switches to the swarm_entropy_sampled() estimator,
/// whose per-tick cost is O(active + sample_k² × pieces / 64) — the
/// mega-swarm configuration.
class SwarmEntropySampler {
 public:
  struct Options {
    double interval = 60.0;
    /// 0 = exact; otherwise the estimator's per-tick leecher sample.
    std::size_t sample_k = 0;
    /// Seed for the estimator's private Rng stream (ignored when exact).
    std::uint64_t seed = 0;
  };

  SwarmEntropySampler(sim::Simulation& sim, const Swarm& swarm,
                      double interval = 60.0)
      : SwarmEntropySampler(sim, swarm, Options{interval, 0, 0}) {}
  SwarmEntropySampler(sim::Simulation& sim, const Swarm& swarm,
                      Options opts);
  ~SwarmEntropySampler();

  SwarmEntropySampler(const SwarmEntropySampler&) = delete;
  SwarmEntropySampler& operator=(const SwarmEntropySampler&) = delete;

  void stop();

  [[nodiscard]] const stats::TimeSeries& entropy() const { return series_; }

 private:
  void tick();

  sim::Simulation& sim_;
  const Swarm& swarm_;
  Options opts_;
  sim::Rng estimator_rng_;  // private stream; never the simulation's
  sim::EventId event_ = 0;
  bool stopped_ = false;
  stats::TimeSeries series_;
};

}  // namespace swarmlab::swarm
