#include "swarm/swarm.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/backend.h"

namespace swarmlab::swarm {

Swarm::Swarm(sim::Simulation& sim, const wire::ContentGeometry& geometry,
             double control_latency, std::unique_ptr<net::Network> network)
    : sim_(sim),
      geo_(geometry),
      net_(network != nullptr
               ? std::move(network)
               : net::make_network(net::kDefaultNetworkBackend, sim,
                                   control_latency)),
      global_availability_(geometry.num_pieces()) {}

Swarm::Swarm(sim::Simulation& sim, wire::Metainfo meta,
             double control_latency, std::unique_ptr<net::Network> network)
    : sim_(sim),
      geo_(meta.geometry()),
      meta_(std::move(meta)),
      net_(network != nullptr
               ? std::move(network)
               : net::make_network(net::kDefaultNetworkBackend, sim,
                                   control_latency)),
      global_availability_(geo_.num_pieces()) {}

peer::Peer* Swarm::find_peer(peer::PeerId id) {
  Slot* slot = slot_of(id);
  return slot == nullptr ? nullptr : slot->peer.get();
}

const peer::Peer* Swarm::find_peer(peer::PeerId id) const {
  const Slot* slot = slot_of(id);
  return slot == nullptr ? nullptr : slot->peer.get();
}

peer::Peer* Swarm::active_peer(peer::PeerId id) {
  Slot* slot = slot_of(id);
  if (slot == nullptr || !slot->in_torrent) return nullptr;
  return slot->peer.get();
}

std::vector<peer::PeerId> Swarm::peer_ids() const {
  std::vector<peer::PeerId> out;
  out.reserve(slots_.size());
  for (peer::PeerId id = 1; id <= slots_.size(); ++id) out.push_back(id);
  return out;
}

const std::vector<peer::PeerId>& Swarm::active_peer_ids() const {
  // Compact once departures outnumber the live population; ascending
  // order is preserved (tombstones are removed in place).
  if (active_tombstones_ > 0 &&
      active_tombstones_ >= active_ids_.size() / 2) {
    std::size_t w = 0;
    for (const peer::PeerId id : active_ids_) {
      const Slot* slot = slot_of(id);
      if (slot != nullptr && slot->in_torrent) active_ids_[w++] = id;
    }
    active_ids_.resize(w);
    active_tombstones_ = 0;
  }
  return active_ids_;
}

void Swarm::reserve_peers(std::size_t expected_total) {
  slots_.reserve(expected_total);
  active_ids_.reserve(expected_total);
}

void Swarm::mark_active(peer::PeerId id) {
  ++active_count_;
  // Ids are assigned in increasing order and usually started in the
  // same order, so this is an append; a peer started late (delayed
  // local join) inserts into place to keep the list ascending.
  if (active_ids_.empty() || active_ids_.back() < id) {
    active_ids_.push_back(id);
    return;
  }
  const auto it =
      std::lower_bound(active_ids_.begin(), active_ids_.end(), id);
  if (it != active_ids_.end() && *it == id) {
    // Still present as a tombstone from an earlier stint; it counts as
    // live again now that the slot's in_torrent flag is back on.
    --active_tombstones_;
    return;
  }
  active_ids_.insert(it, id);
}

void Swarm::mark_inactive(peer::PeerId id) {
  (void)id;  // the id stays in active_ids_ as a tombstone
  --active_count_;
  ++active_tombstones_;
}

void Swarm::enable_interest_ledger() {
  if (ledger_ != nullptr) return;
  ledger_ = std::make_unique<InterestLedger>(geo_.num_pieces());
  for (const peer::PeerId id : active_peer_ids()) {
    const Slot* slot = slot_of(id);
    if (slot == nullptr || !slot->in_torrent) continue;
    if (!slot->peer->is_seed()) ledger_->join(id, slot->peer->have());
  }
}

bool Swarm::torrent_alive() const {
  // Combine active peers' bitfields; any piece with zero copies kills the
  // torrent (global_availability_ tracks exactly this).
  for (wire::PieceIndex p = 0; p < geo_.num_pieces(); ++p) {
    if (global_availability_.copies(p) == 0) return false;
  }
  return true;
}

peer::PeerId Swarm::add_peer(peer::PeerConfig cfg,
                             peer::PeerObserver* observer) {
  const peer::PeerId id = next_id_++;
  cfg.id = id;
  Slot slot;
  slot.node = net_->add_node(cfg.upload_capacity, cfg.download_capacity);
  // The hub owns observer fan-out; with a single observer (or none) the
  // effective hook is the observer pointer itself, exactly as before.
  peer::PeerObserver* hook = hub_.on_peer_added(id, observer);
  slot.peer = std::make_unique<peer::Peer>(*this, geo_, std::move(cfg), hook);
  hub_.bind_peer(id, slot.peer.get());
  slots_.push_back(std::move(slot));
  return id;
}

void Swarm::start_peer(peer::PeerId id) {
  Slot* found = slot_of(id);
  assert(found != nullptr && !found->in_torrent);
  Slot& slot = *found;
  slot.in_torrent = true;
  mark_active(id);
  // Register this peer's initial pieces with the global oracle.
  slot.counted_in_global = true;
  const core::Bitfield& have = slot.peer->have();
  global_availability_.add_peer(have);
  if (ledger_ != nullptr && !slot.peer->is_seed()) {
    ledger_->join(id, have);
  }
  slot.peer->start();
}

void Swarm::stop_peer(peer::PeerId id) {
  Slot* found = slot_of(id);
  if (found == nullptr || !found->in_torrent) return;
  Slot& slot = *found;
  slot.peer->stop();  // disconnects everyone, announces stopped
  slot.in_torrent = false;
  mark_inactive(id);
  if (ledger_ != nullptr) ledger_->leave(id);
  if (slot.counted_in_global) {
    global_availability_.remove_peer(slot.peer->have());
    slot.counted_in_global = false;
  }
  net_->remove_node(slot.node);
}

bool Swarm::crash_peer(peer::PeerId id) {
  Slot* found = slot_of(id);
  if (found == nullptr || !found->in_torrent) return false;
  Slot& slot = *found;
  slot.peer->crash();  // no Stopped announce, no disconnect callbacks
  slot.in_torrent = false;
  mark_inactive(id);
  if (ledger_ != nullptr) ledger_->leave(id);
  if (slot.counted_in_global) {
    global_availability_.remove_peer(slot.peer->have());
    slot.counted_in_global = false;
  }
  // Removing the node silently aborts every in-flight transfer touching
  // it — mirroring TCP streams dying with the host. Remote senders whose
  // upload flows vanish recover via their liveness tick.
  net_->remove_node(slot.node);
  return true;
}

void Swarm::send_control(peer::PeerId from, peer::PeerId to,
                         wire::Message msg) {
  double extra_delay = 0.0;
  if (control_fault_ && !control_fault_(&extra_delay)) return;  // lost
  net_->send_control(
      [this, from, to, msg = std::move(msg)] {
        if (peer::Peer* p = active_peer(to); p != nullptr) {
          p->handle_message(from, msg);
        }
      },
      extra_delay);
}

void Swarm::broadcast_have(peer::PeerId from, wire::PieceIndex piece) {
  // Keep the global oracle in sync with the completion itself, not the
  // delivery of the HAVEs.
  global_availability_.add_have(piece);
  peer::Peer* sender = active_peer(from);
  if (sender == nullptr) return;
  if (ledger_ != nullptr) {
    // The sender's bitfield already holds the piece. A completing
    // leecher is a seed now — it leaves the leecher pair set wholesale
    // (matching the brute-force definition) instead of propagating a
    // gain it will not keep.
    if (sender->is_seed()) {
      ledger_->leave(from);
    } else {
      ledger_->on_piece_gain(from, piece);
    }
  }
  std::vector<peer::PeerId> targets = sender->connected_peers();
  if (control_fault_) {
    // Faults apply per receiver, so the broadcast decomposes into
    // independent deliveries (each may be lost or jittered separately).
    for (const peer::PeerId t : targets) {
      double extra_delay = 0.0;
      if (!control_fault_(&extra_delay)) continue;  // lost on this link
      net_->send_control(
          [this, from, piece, t] {
            if (peer::Peer* p = active_peer(t); p != nullptr) {
              p->handle_message(from, wire::HaveMsg{piece});
            }
          },
          extra_delay);
    }
    return;
  }
  // One scheduled delivery to all connections (event economy; equivalent
  // to per-connection control messages with identical latency).
  net_->send_control([this, from, piece, targets = std::move(targets)] {
    for (const peer::PeerId t : targets) {
      if (peer::Peer* p = active_peer(t); p != nullptr) {
        p->handle_message(from, wire::HaveMsg{piece});
      }
    }
  });
}

net::FlowId Swarm::send_block(peer::PeerId from, peer::PeerId to,
                              wire::BlockRef block) {
  const Slot* from_slot = slot_of(from);
  const Slot* to_slot = slot_of(to);
  if (from_slot == nullptr || to_slot == nullptr) return 0;
  if (!from_slot->in_torrent || !to_slot->in_torrent) return 0;
  const std::uint32_t bytes = geo_.block_bytes(block);
  // A corrupting sender's blocks carry a one-byte taint marker — the
  // simulator's stand-in for data that will fail the piece hash check.
  const bool corrupt = from_slot->peer->config().sends_corrupt_data;
  return net_->start_flow(
      from_slot->node, to_slot->node, bytes,
      [this, from, to, block, bytes, corrupt] {
        // Deliver the data to the receiver, then free the sender's slot.
        if (peer::Peer* p = active_peer(to); p != nullptr) {
          wire::PieceMsg msg{block.piece, block.block * geo_.block_size(),
                             {}};
          if (meta_.has_value()) {
            // Data plane: carry (and possibly corrupt) the real bytes.
            if (const peer::Peer* s = find_peer(from); s != nullptr) {
              msg.data = s->read_block(block);
              if (corrupt && !msg.data.empty()) msg.data[0] ^= 0xFF;
            }
          } else if (corrupt) {
            msg.data.assign(1, 0xBD);  // taint marker (no data plane)
          }
          p->handle_message(from, std::move(msg));
        }
        if (peer::Peer* p = active_peer(from); p != nullptr) {
          p->on_block_sent(to, block, bytes);
        }
      });
}

void Swarm::connect(peer::PeerId from, peer::PeerId to) {
  net_->send_control([this, from, to] {
    peer::Peer* a = active_peer(from);
    peer::Peer* b = active_peer(to);
    if (a == nullptr || b == nullptr) return;
    if (a->connection(to) != nullptr) return;  // raced another attempt
    if (a->peer_set_size() >= a->config().params.max_peer_set) return;
    if (!b->accepts_connection(from)) return;
    b->on_connected(from, /*initiated_by_us=*/false);
    a->on_connected(to, /*initiated_by_us=*/true);
  });
}

void Swarm::disconnect(peer::PeerId a, peer::PeerId b) {
  // Synchronous teardown on both sides keeps connection state symmetric.
  if (peer::Peer* p = find_peer(a); p != nullptr) p->on_disconnected(b);
  if (peer::Peer* p = find_peer(b); p != nullptr) p->on_disconnected(a);
}

peer::AnnounceResult Swarm::announce(peer::PeerId who,
                                     peer::AnnounceEvent event) {
  const peer::Peer* p = find_peer(who);
  const bool is_seed = p != nullptr && p->is_seed();
  return tracker_.announce(who, event, is_seed, sim_.rng(), sim_.now());
}

}  // namespace swarmlab::swarm
