#include "swarm/tracker.h"

#include <algorithm>
#include <cassert>

namespace swarmlab::swarm {

peer::AnnounceResult Tracker::announce(peer::PeerId who,
                                       peer::AnnounceEvent event,
                                       bool is_seed, sim::Rng& rng,
                                       double now) {
  ++stats_.announces;
  if (!online_) {
    ++stats_.failed;
    peer::AnnounceResult failed;
    failed.ok = false;
    return failed;
  }
  // Lazy member expiry: shed peers that stopped announcing (crashed
  // without a Stopped event). Processing at announce time keeps the
  // tracker free of timers of its own.
  if (member_expiry_ > 0.0) expire_stale(now, who);
  switch (event) {
    case peer::AnnounceEvent::kStarted:
      ++stats_.started;
      upsert(who, is_seed);
      break;
    case peer::AnnounceEvent::kCompleted:
      ++stats_.completed;
      upsert(who, true);
      break;
    case peer::AnnounceEvent::kStopped:
      ++stats_.stopped;
      if (is_present(who)) remove_member(who);
      return {};
    case peer::AnnounceEvent::kRegular:
      upsert(who, is_seed);
      break;
  }
  Entry& me = entry(who);
  me.last_announce = now;
  if (member_expiry_ > 0.0) expiry_heap_.push({now, who});

  // Sample from the members excluding the announcer, exactly as the
  // historical scan did: the virtual pool is the present ids in
  // ascending order with `who` removed, and sample_indices consumes the
  // same draws for the same (pool size, k) — so trajectories are
  // byte-identical while the cost drops to O(k log members).
  peer::AnnounceResult result;
  const std::size_t pool_size = num_members_ - 1;  // who is present
  const std::size_t k =
      std::min<std::size_t>(peers_per_announce_, pool_size);
  if (k > 0) {
    const std::size_t who_rank = rank_before(who);
    const auto idx = rng.sample_indices(pool_size, k);
    result.peers.reserve(k);
    for (const std::size_t i : idx) {
      result.peers.push_back(select(i < who_rank ? i : i + 1));
    }
  }
  return result;
}

void Tracker::set_member_expiry(double seconds) {
  // Enabling expiry after members joined (no heap entries yet): give
  // every present member a candidate so none can outlive the margin
  // silently. Scenario runs configure expiry before any announce, so
  // this loop is empty in practice.
  if (seconds > 0.0 && member_expiry_ <= 0.0) {
    for (peer::PeerId id = 1; id <= entries_.size(); ++id) {
      const Entry& e = entries_[id - 1];
      if (e.present) expiry_heap_.push({e.last_announce, id});
    }
  }
  member_expiry_ = seconds;
}

Tracker::Entry& Tracker::entry(peer::PeerId id) {
  ensure_capacity(id);
  return entries_[id - 1];
}

void Tracker::upsert(peer::PeerId who, bool seed) {
  Entry& e = entry(who);
  if (!e.present) {
    e.present = true;
    e.seed = seed;
    ++num_members_;
    if (seed) ++num_seeds_;
    fenwick_add(who, +1);
    return;
  }
  if (e.seed != seed) {
    e.seed = seed;
    seed ? ++num_seeds_ : --num_seeds_;
  }
}

void Tracker::remove_member(peer::PeerId id) {
  Entry& e = entry(id);
  assert(e.present);
  e.present = false;
  --num_members_;
  if (e.seed) --num_seeds_;
  fenwick_add(id, -1);
}

void Tracker::expire_stale(double now, peer::PeerId who) {
  while (!expiry_heap_.empty()) {
    const ExpiryCandidate top = expiry_heap_.top();
    if (!(now - top.last_announce > member_expiry_)) break;  // rest is fresh
    expiry_heap_.pop();
    if (!is_present(top.id)) continue;  // already left (Stopped/expired)
    const Entry& e = entries_[top.id - 1];
    if (e.last_announce != top.last_announce) continue;  // refreshed since
    if (top.id == who) continue;  // re-announcing right now
    ++stats_.expired;
    remove_member(top.id);
  }
}

void Tracker::fenwick_add(peer::PeerId id, int delta) {
  for (std::size_t i = id; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

std::size_t Tracker::rank_before(peer::PeerId id) const {
  // Prefix sum over ids [1, id - 1].
  std::size_t sum = 0;
  for (std::size_t i = id - 1; i > 0; i -= i & (~i + 1)) {
    sum += static_cast<std::size_t>(fenwick_[i]);
  }
  return sum;
}

peer::PeerId Tracker::select(std::size_t r) const {
  // Binary-indexed descend: find the smallest id whose prefix sum
  // reaches r + 1.
  assert(r < num_members_);
  std::size_t need = r + 1;
  std::size_t pos = 0;
  std::size_t mask = 1;
  while ((mask << 1) < fenwick_.size()) mask <<= 1;
  for (; mask > 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next < fenwick_.size() &&
        static_cast<std::size_t>(fenwick_[next]) < need) {
      pos = next;
      need -= static_cast<std::size_t>(fenwick_[next]);
    }
  }
  return static_cast<peer::PeerId>(pos + 1);
}

void Tracker::ensure_capacity(peer::PeerId id) {
  if (id <= entries_.size()) return;
  // Double so Fenwick rebuilds amortize to O(1) per new member. The
  // tree is rebuilt from scratch: entries keep the ground truth.
  std::size_t cap = std::max<std::size_t>(entries_.size() * 2, 64);
  cap = std::max<std::size_t>(cap, id);
  entries_.resize(cap);
  fenwick_.assign(cap + 1, 0);
  for (peer::PeerId p = 1; p <= cap; ++p) {
    if (entries_[p - 1].present) fenwick_add(p, +1);
  }
}

}  // namespace swarmlab::swarm
