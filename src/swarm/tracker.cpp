#include "swarm/tracker.h"

namespace swarmlab::swarm {

peer::AnnounceResult Tracker::announce(peer::PeerId who,
                                       peer::AnnounceEvent event,
                                       bool is_seed, sim::Rng& rng,
                                       double now) {
  ++stats_.announces;
  if (!online_) {
    ++stats_.failed;
    peer::AnnounceResult failed;
    failed.ok = false;
    return failed;
  }
  // Lazy member expiry: shed peers that stopped announcing (crashed
  // without a Stopped event). Scanning at announce time keeps the tracker
  // free of timers of its own.
  if (member_expiry_ > 0.0) {
    for (auto it = members_.begin(); it != members_.end();) {
      if (it->first != who && now - it->second.last_announce > member_expiry_) {
        ++stats_.expired;
        it = members_.erase(it);
      } else {
        ++it;
      }
    }
  }
  switch (event) {
    case peer::AnnounceEvent::kStarted:
      ++stats_.started;
      members_[who].seed = is_seed;
      break;
    case peer::AnnounceEvent::kCompleted:
      ++stats_.completed;
      members_[who].seed = true;
      break;
    case peer::AnnounceEvent::kStopped:
      ++stats_.stopped;
      members_.erase(who);
      return {};
    case peer::AnnounceEvent::kRegular:
      members_[who].seed = is_seed;
      break;
  }
  members_[who].last_announce = now;

  std::vector<peer::PeerId> pool;
  pool.reserve(members_.size());
  for (const auto& [id, entry] : members_) {
    if (id != who) pool.push_back(id);
  }
  peer::AnnounceResult result;
  const std::size_t k =
      std::min<std::size_t>(peers_per_announce_, pool.size());
  if (k > 0) {
    const auto idx = rng.sample_indices(pool.size(), k);
    result.peers.reserve(k);
    for (const std::size_t i : idx) result.peers.push_back(pool[i]);
  }
  return result;
}

std::size_t Tracker::num_seeds() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : members_) {
    if (entry.seed) ++n;
  }
  return n;
}

}  // namespace swarmlab::swarm
