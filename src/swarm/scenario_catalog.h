// The scenario catalog: every named workload the benches run, in one
// place. Historically each bench carried its own inline ScenarioConfig
// (the Table-I rows came from scenario_from_table1, but the flash
// crowds, ablation setups and perf tiers were duplicated literals);
// the catalog makes them first-class named scenarios that tools, tests
// and docs can reference by name, and ScenarioBuilder derives variants
// — most importantly population-scaled ones — without copying fields.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "swarm/scenario.h"

namespace swarmlab::swarm {

/// One named scenario: a runnable ScenarioConfig plus a summary line for
/// catalog listings (`scenario_explorer`, docs).
struct CatalogEntry {
  std::string name;
  std::string summary;
  ScenarioConfig config;
};

/// The full catalog, in stable order. Entries are frozen: benches and
/// the perf baseline depend on these exact parameters, so changing one
/// is a breaking change to every report derived from it. Includes the
/// 26 Table-I rows at sweep scale plus the named non-Table workloads
/// (flash crowds, ablations, perf tiers, mega-swarm scale tiers).
const std::vector<CatalogEntry>& scenario_catalog();

/// Looks up one catalog entry by name; nullptr when absent.
const CatalogEntry* find_scenario(std::string_view name);

/// The named scenario's config. Throws std::invalid_argument naming the
/// unknown scenario (with the available names) — catalog consumers want
/// a loud failure, not a default config.
ScenarioConfig catalog_scenario(std::string_view name);

/// Scale preset used by the 26-torrent sweep benches (Figs. 1, 9, 11;
/// Table I): small enough that a full sweep stays in the tens of
/// seconds.
ScaleLimits sweep_scale_limits();

/// Scale preset used by the single-torrent deep-dive benches
/// (Figs. 2-8, 10): larger swarm and content for better-resolved time
/// series.
ScaleLimits deep_dive_scale_limits();

/// Fluent derivation of ScenarioConfig variants. Starts from a base
/// config (defaults, a catalog entry, or any hand-built config), applies
/// overrides, and validates on build(). The key method for the
/// mega-swarm tiers is scale(): one base flash crowd describes the
/// workload, and .scale(4) / .scale(10) produce the 4k / 10k variants
/// with populations and arrival rate multiplied together so the
/// per-capita dynamics stay comparable across tiers.
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  explicit ScenarioBuilder(ScenarioConfig base) : cfg_(std::move(base)) {}

  /// Seeds the builder from a catalog entry (throws on unknown name).
  static ScenarioBuilder from_catalog(std::string_view name) {
    return ScenarioBuilder(catalog_scenario(name));
  }

  ScenarioBuilder& name(std::string v) {
    cfg_.name = std::move(v);
    return *this;
  }
  ScenarioBuilder& content(std::uint32_t num_pieces, std::uint32_t piece_size,
                           std::uint32_t block_size) {
    cfg_.num_pieces = num_pieces;
    cfg_.piece_size = piece_size;
    cfg_.block_size = block_size;
    return *this;
  }
  ScenarioBuilder& population(std::uint32_t seeds, std::uint32_t leechers,
                              std::uint32_t max_population) {
    cfg_.initial_seeds = seeds;
    cfg_.initial_leechers = leechers;
    cfg_.max_population = max_population;
    return *this;
  }
  /// Steady-state warm start with the given completion range.
  ScenarioBuilder& warm(double warm_min, double warm_max) {
    cfg_.leechers_warm = true;
    cfg_.warm_min = warm_min;
    cfg_.warm_max = warm_max;
    return *this;
  }
  /// Transient (startup) state: every initial leecher begins empty.
  ScenarioBuilder& cold() {
    cfg_.leechers_warm = false;
    return *this;
  }
  ScenarioBuilder& arrivals(double rate_per_second) {
    cfg_.arrival_rate = rate_per_second;
    return *this;
  }
  ScenarioBuilder& seed_linger(double mean_seconds) {
    cfg_.seed_linger_mean = mean_seconds;
    return *this;
  }
  ScenarioBuilder& duration(double seconds) {
    cfg_.duration = seconds;
    return *this;
  }
  ScenarioBuilder& backend(std::string name) {
    cfg_.network_backend = std::move(name);
    return *this;
  }
  ScenarioBuilder& observation(ObservationPlan plan) {
    cfg_.observation = std::move(plan);
    return *this;
  }
  ScenarioBuilder& local_peer(bool spawn) {
    cfg_.spawn_local_peer = spawn;
    return *this;
  }

  /// Multiplies the population axis by `factor` (> 0): initial seeds,
  /// initial leechers, the population cap and the arrival rate all scale
  /// together (rounded to nearest; a non-zero population never rounds to
  /// zero, so a scaled swarm keeps at least one of each role it had).
  ScenarioBuilder& scale(double factor);

  /// Direct access for overrides the fluent surface doesn't cover.
  [[nodiscard]] ScenarioConfig& config() { return cfg_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }

  /// Validates (throws std::invalid_argument with the
  /// validate_scenario() message) and returns the config.
  [[nodiscard]] ScenarioConfig build() const;

 private:
  ScenarioConfig cfg_;
};

}  // namespace swarmlab::swarm
