#include "swarm/observer_hub.h"

#include <algorithm>

#include "peer/peer.h"

namespace swarmlab::swarm {

peer::PeerObserver* ObserverHub::effective(const Entry& e) {
  // Once the fan exists it stays the dispatch target even if it empties:
  // a live Peer may be mid-callback through it, and an empty fan is a
  // correct no-op.
  if (e.fan != nullptr) return e.fan.get();
  return e.members.empty() ? nullptr : e.members.front();
}

void ObserverHub::apply(Entry& e) {
  if (e.peer != nullptr) e.peer->set_observer(effective(e));
}

void ObserverHub::add_member(Entry& e, peer::PeerObserver* observer) {
  if (e.fan == nullptr && e.members.size() == 1) {
    // Second observer: materialize the fan-out, preserving order.
    e.fan = std::make_unique<instrument::ObserverList>();
    e.fan->add(e.members.front());
  }
  if (e.fan != nullptr) e.fan->add(observer);
  e.members.push_back(observer);
  apply(e);
}

bool ObserverHub::remove_member(Entry& e, peer::PeerObserver* observer) {
  const auto it = std::find(e.members.begin(), e.members.end(), observer);
  if (it == e.members.end()) return false;
  e.members.erase(it);
  if (e.fan != nullptr) e.fan->remove(observer);
  apply(e);
  return true;
}

void ObserverHub::attach_scoped(Entry& e, peer::PeerId id,
                                peer::SwarmObserver* s) {
  auto proxy = std::make_unique<peer::PeerScopedObserver>(id, s);
  add_member(e, proxy.get());
  e.proxies.emplace_back(s, std::move(proxy));
}

bool ObserverHub::detach_scoped(Entry& e, peer::SwarmObserver* s) {
  const auto it = std::find_if(e.proxies.begin(), e.proxies.end(),
                               [s](const auto& p) { return p.first == s; });
  if (it == e.proxies.end()) return false;
  remove_member(e, it->second.get());
  // The fan skips removed slots mid-dispatch, but the proxy object must
  // outlive any dispatch currently executing through it.
  e.retired.push_back(std::move(it->second));
  e.proxies.erase(it);
  return true;
}

void ObserverHub::attach(peer::PeerId id, peer::PeerObserver* observer) {
  if (observer == nullptr) return;
  add_member(entries_[id], observer);
}

bool ObserverHub::detach(peer::PeerId id, peer::PeerObserver* observer) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  return remove_member(it->second, observer);
}

void ObserverHub::attach(peer::PeerId id, peer::SwarmObserver* observer) {
  if (observer == nullptr) return;
  attach_scoped(entries_[id], id, observer);
}

bool ObserverHub::detach(peer::PeerId id, peer::SwarmObserver* observer) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  return detach_scoped(it->second, observer);
}

void ObserverHub::attach_all(peer::SwarmObserver* observer) {
  if (observer == nullptr) return;
  all_.push_back(observer);
  for (auto& [id, entry] : entries_) attach_scoped(entry, id, observer);
}

bool ObserverHub::detach_all(peer::SwarmObserver* observer) {
  const auto it = std::find(all_.begin(), all_.end(), observer);
  if (it == all_.end()) return false;
  all_.erase(it);
  for (auto& [id, entry] : entries_) detach_scoped(entry, observer);
  return true;
}

std::size_t ObserverHub::observers_on(peer::PeerId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() ? it->second.members.size() : 0;
}

peer::PeerObserver* ObserverHub::on_peer_added(peer::PeerId id,
                                               peer::PeerObserver* direct) {
  Entry& e = entries_[id];
  if (direct != nullptr) add_member(e, direct);
  for (peer::SwarmObserver* s : all_) attach_scoped(e, id, s);
  return effective(e);
}

void ObserverHub::bind_peer(peer::PeerId id, peer::Peer* peer) {
  entries_[id].peer = peer;
}

}  // namespace swarmlab::swarm
