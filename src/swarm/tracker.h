// The tracker: the only centralized component of BitTorrent (§II-B).
//
// It keeps the list of peers currently in the torrent and hands each
// announcer a random subset (50 by default). It never touches content.
//
// Built for mega swarms: an announce against a 10k-member torrent costs
// O(sample * log members + expired), not O(members). Membership lives in
// a dense per-id table with a Fenwick (binary indexed) tree over the
// present bits for O(log n) rank/select — the sampler draws indices into
// the ascending-id member list exactly as the historical std::map scan
// did, so every trajectory is byte-identical — and expiry uses a lazy
// min-heap keyed on last-announce time instead of a full-table scan.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "peer/fabric.h"
#include "peer/types.h"
#include "sim/rng.h"

namespace swarmlab::swarm {

/// Aggregate tracker-side statistics (what tracker-scraping studies see).
struct TrackerStats {
  std::size_t seeds = 0;
  std::size_t leechers = 0;
  std::uint64_t announces = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t stopped = 0;
  std::uint64_t failed = 0;   ///< announces rejected while offline
  std::uint64_t expired = 0;  ///< members dropped for not re-announcing
};

/// Membership registry + random peer-list server.
class Tracker {
 public:
  explicit Tracker(std::uint32_t peers_per_announce = 50)
      : peers_per_announce_(peers_per_announce) {}

  /// Processes one announce at simulated time `now`; returns up to
  /// `peers_per_announce` random members, excluding the announcer. While
  /// offline (fault injection) the result carries ok=false and the
  /// membership is untouched.
  peer::AnnounceResult announce(peer::PeerId who, peer::AnnounceEvent event,
                                bool is_seed, sim::Rng& rng,
                                double now = 0.0);

  /// Fault injection: while offline every announce fails.
  void set_online(bool online) { online_ = online; }
  [[nodiscard]] bool online() const { return online_; }

  /// Members whose last announce is older than `seconds` are dropped
  /// lazily at the next processed announce (0 disables). This is how a
  /// real tracker sheds peers that crashed without a Stopped announce;
  /// gracefully behaving peers re-announce every ~30 min and never come
  /// close to the default expiry, so enabling it does not perturb
  /// fault-free runs.
  void set_member_expiry(double seconds);
  [[nodiscard]] double member_expiry() const { return member_expiry_; }

  [[nodiscard]] std::size_t num_members() const { return num_members_; }
  [[nodiscard]] std::size_t num_seeds() const { return num_seeds_; }
  [[nodiscard]] std::size_t num_leechers() const {
    return num_members_ - num_seeds_;
  }
  [[nodiscard]] const TrackerStats& stats() const { return stats_; }

 private:
  struct Entry {
    bool present = false;
    bool seed = false;
    double last_announce = 0.0;
  };

  /// Oldest-first candidate for lazy expiry; entries whose member
  /// refreshed (last_announce moved on) or left are discarded on pop.
  struct ExpiryCandidate {
    double last_announce = 0.0;
    peer::PeerId id = 0;
    bool operator>(const ExpiryCandidate& other) const {
      return last_announce > other.last_announce ||
             (last_announce == other.last_announce && id > other.id);
    }
  };

  [[nodiscard]] Entry& entry(peer::PeerId id);
  [[nodiscard]] bool is_present(peer::PeerId id) const {
    return id >= 1 && id <= entries_.size() && entries_[id - 1].present;
  }
  /// Registers `who` (creating the entry on first contact) and applies
  /// the seed flag, keeping the member/seed counters in step.
  void upsert(peer::PeerId who, bool seed);
  void remove_member(peer::PeerId id);
  /// Drops every member whose last announce is older than the expiry
  /// margin, skipping `who` (who is re-announcing right now). Cost is
  /// O(expired + stale heap entries popped), independent of membership.
  void expire_stale(double now, peer::PeerId who);

  // --- Fenwick tree over present bits (1-based ids) ----------------------
  void fenwick_add(peer::PeerId id, int delta);
  /// Number of present members with id < `id`.
  [[nodiscard]] std::size_t rank_before(peer::PeerId id) const;
  /// The (r+1)-th present member in ascending id order (r is 0-based;
  /// r < num_members_).
  [[nodiscard]] peer::PeerId select(std::size_t r) const;
  void ensure_capacity(peer::PeerId id);

  std::uint32_t peers_per_announce_;
  bool online_ = true;
  double member_expiry_ = 0.0;
  std::vector<Entry> entries_;     // index = PeerId - 1
  std::vector<std::int32_t> fenwick_;  // 1-based, sized entries_.size() + 1
  std::priority_queue<ExpiryCandidate, std::vector<ExpiryCandidate>,
                      std::greater<ExpiryCandidate>>
      expiry_heap_;
  std::size_t num_members_ = 0;
  std::size_t num_seeds_ = 0;
  TrackerStats stats_;
};

}  // namespace swarmlab::swarm
