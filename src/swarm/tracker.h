// The tracker: the only centralized component of BitTorrent (§II-B).
//
// It keeps the list of peers currently in the torrent and hands each
// announcer a random subset (50 by default). It never touches content.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "peer/fabric.h"
#include "peer/types.h"
#include "sim/rng.h"

namespace swarmlab::swarm {

/// Aggregate tracker-side statistics (what tracker-scraping studies see).
struct TrackerStats {
  std::size_t seeds = 0;
  std::size_t leechers = 0;
  std::uint64_t announces = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t stopped = 0;
  std::uint64_t failed = 0;   ///< announces rejected while offline
  std::uint64_t expired = 0;  ///< members dropped for not re-announcing
};

/// Membership registry + random peer-list server.
class Tracker {
 public:
  explicit Tracker(std::uint32_t peers_per_announce = 50)
      : peers_per_announce_(peers_per_announce) {}

  /// Processes one announce at simulated time `now`; returns up to
  /// `peers_per_announce` random members, excluding the announcer. While
  /// offline (fault injection) the result carries ok=false and the
  /// membership is untouched.
  peer::AnnounceResult announce(peer::PeerId who, peer::AnnounceEvent event,
                                bool is_seed, sim::Rng& rng,
                                double now = 0.0);

  /// Fault injection: while offline every announce fails.
  void set_online(bool online) { online_ = online; }
  [[nodiscard]] bool online() const { return online_; }

  /// Members whose last announce is older than `seconds` are dropped
  /// lazily at the next processed announce (0 disables). This is how a
  /// real tracker sheds peers that crashed without a Stopped announce;
  /// gracefully behaving peers re-announce every ~30 min and never come
  /// close to the default expiry, so enabling it does not perturb
  /// fault-free runs.
  void set_member_expiry(double seconds) { member_expiry_ = seconds; }
  [[nodiscard]] double member_expiry() const { return member_expiry_; }

  [[nodiscard]] std::size_t num_members() const { return members_.size(); }
  [[nodiscard]] std::size_t num_seeds() const;
  [[nodiscard]] std::size_t num_leechers() const {
    return members_.size() - num_seeds();
  }
  [[nodiscard]] const TrackerStats& stats() const { return stats_; }

 private:
  struct Entry {
    bool seed = false;
    double last_announce = 0.0;
  };

  std::uint32_t peers_per_announce_;
  bool online_ = true;
  double member_expiry_ = 0.0;
  std::map<peer::PeerId, Entry> members_;  // ordered: deterministic sampling
  TrackerStats stats_;
};

}  // namespace swarmlab::swarm
