// The tracker: the only centralized component of BitTorrent (§II-B).
//
// It keeps the list of peers currently in the torrent and hands each
// announcer a random subset (50 by default). It never touches content.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "peer/fabric.h"
#include "peer/types.h"
#include "sim/rng.h"

namespace swarmlab::swarm {

/// Aggregate tracker-side statistics (what tracker-scraping studies see).
struct TrackerStats {
  std::size_t seeds = 0;
  std::size_t leechers = 0;
  std::uint64_t announces = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t stopped = 0;
};

/// Membership registry + random peer-list server.
class Tracker {
 public:
  explicit Tracker(std::uint32_t peers_per_announce = 50)
      : peers_per_announce_(peers_per_announce) {}

  /// Processes one announce; returns up to `peers_per_announce` random
  /// members, excluding the announcer.
  peer::AnnounceResult announce(peer::PeerId who, peer::AnnounceEvent event,
                                bool is_seed, sim::Rng& rng);

  [[nodiscard]] std::size_t num_members() const { return members_.size(); }
  [[nodiscard]] std::size_t num_seeds() const;
  [[nodiscard]] std::size_t num_leechers() const {
    return members_.size() - num_seeds();
  }
  [[nodiscard]] const TrackerStats& stats() const { return stats_; }

 private:
  struct Entry {
    bool seed = false;
  };

  std::uint32_t peers_per_announce_;
  std::map<peer::PeerId, Entry> members_;  // ordered: deterministic sampling
  TrackerStats stats_;
};

}  // namespace swarmlab::swarm
