// Swarm-wide observer attachment: every Peer dispatches through a cheap
// nullable hook (PeerContext::observer); the hub decides what that hook
// points at. Zero observers -> nullptr (the remote-peer fast path), one
// observer -> the observer itself (the paper's single instrumented
// client, byte-identical to the pre-hub wiring), several -> a persistent
// ObserverList fan-out. SwarmObserver subscriptions (per peer or
// all-peers) are wrapped in per-peer PeerScopedObserver proxies so the
// subscriber sees which peer each callback came from.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "instrument/trace.h"
#include "peer/observer.h"
#include "peer/types.h"

namespace swarmlab::peer {
class Peer;
}

namespace swarmlab::swarm {

class ObserverHub {
 public:
  // --- subscription API -------------------------------------------------

  /// Attaches a plain per-peer observer. Observers attached mid-dispatch
  /// start with the next event (ObserverList semantics). Attachment
  /// order is dispatch order.
  void attach(peer::PeerId id, peer::PeerObserver* observer);
  /// Detaches; returns false when not attached. Safe mid-dispatch.
  bool detach(peer::PeerId id, peer::PeerObserver* observer);

  /// Attaches a swarm observer to one peer (callbacks carry the peer's
  /// id).
  void attach(peer::PeerId id, peer::SwarmObserver* observer);
  bool detach(peer::PeerId id, peer::SwarmObserver* observer);

  /// Attaches a swarm observer to every current AND future peer.
  void attach_all(peer::SwarmObserver* observer);
  /// Stops both the broadcast subscription and the per-peer proxies it
  /// already created. Returns false when not attached.
  bool detach_all(peer::SwarmObserver* observer);

  [[nodiscard]] std::size_t observers_on(peer::PeerId id) const;

  // --- Swarm wiring -----------------------------------------------------

  /// Called by Swarm::add_peer before the Peer is constructed; `direct`
  /// is add_peer's observer argument (may be null). Returns the pointer
  /// the new Peer should dispatch through.
  peer::PeerObserver* on_peer_added(peer::PeerId id,
                                    peer::PeerObserver* direct);
  /// Binds the constructed Peer so later attach/detach calls can swap
  /// its hook in place.
  void bind_peer(peer::PeerId id, peer::Peer* peer);

 private:
  struct Entry {
    peer::Peer* peer = nullptr;
    /// Attached observers in attach order (proxies included). Size 0/1
    /// only while `fan` has never been needed.
    std::vector<peer::PeerObserver*> members;
    /// (subscriber, proxy) pairs for swarm observers on this peer.
    std::vector<std::pair<peer::SwarmObserver*,
                          std::unique_ptr<peer::PeerScopedObserver>>>
        proxies;
    /// Proxies detached mid-run; kept alive so an in-flight dispatch
    /// never touches freed memory.
    std::vector<std::unique_ptr<peer::PeerScopedObserver>> retired;
    /// Created once two observers coexist; never destroyed afterwards
    /// (its address is what a live Peer dispatches through).
    std::unique_ptr<instrument::ObserverList> fan;
  };

  [[nodiscard]] static peer::PeerObserver* effective(const Entry& e);
  void add_member(Entry& e, peer::PeerObserver* observer);
  bool remove_member(Entry& e, peer::PeerObserver* observer);
  void attach_scoped(Entry& e, peer::PeerId id, peer::SwarmObserver* s);
  bool detach_scoped(Entry& e, peer::SwarmObserver* s);
  void apply(Entry& e);

  std::map<peer::PeerId, Entry> entries_;
  std::vector<peer::SwarmObserver*> all_;
};

}  // namespace swarmlab::swarm
