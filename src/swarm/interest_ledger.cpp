#include "swarm/interest_ledger.h"

#include <cassert>

namespace swarmlab::swarm {

void InterestLedger::grow(std::size_t min_capacity) {
  std::size_t cap = capacity_ == 0 ? 16 : capacity_;
  while (cap < min_capacity) cap *= 2;
  if (cap == capacity_) return;
  std::vector<std::uint16_t> next(cap * cap, 0);
  for (std::size_t a = 0; a < ids_.size(); ++a) {
    for (std::size_t b = 0; b < ids_.size(); ++b) {
      next[a * cap + b] = counts_[a * capacity_ + b];
    }
  }
  counts_ = std::move(next);
  capacity_ = cap;
}

void InterestLedger::join(peer::PeerId id, const core::Bitfield& have) {
  if (is_member(id)) return;
  assert(num_pieces_ <= 0xFFFF && "pair counts are 16-bit");
  const std::size_t g = ids_.size();
  grow(g + 1);
  ids_.push_back(id);
  haves_.push_back(&have);
  index_.emplace(id, g);
  // Both directions against every existing member: word-parallel
  // bitfield joins, O(members x pieces / 64).
  for (std::size_t x = 0; x < g; ++x) {
    const auto x_wants =
        static_cast<std::uint16_t>(haves_[x]->count_missing_from(have));
    const auto g_wants =
        static_cast<std::uint16_t>(have.count_missing_from(*haves_[x]));
    cnt(x, g) = x_wants;
    cnt(g, x) = g_wants;
    if (x_wants > 0) ++interested_;
    if (g_wants > 0) ++interested_;
  }
  cnt(g, g) = 0;
}

void InterestLedger::leave(peer::PeerId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  const std::size_t g = it->second;
  const std::size_t last = ids_.size() - 1;
  for (std::size_t x = 0; x < ids_.size(); ++x) {
    if (x == g) continue;
    if (cnt(x, g) > 0) --interested_;
    if (cnt(g, x) > 0) --interested_;
  }
  // Swap-remove: the last slot's row and column move into g's. Pair
  // order is irrelevant to the aggregate, so compaction is O(members).
  if (g != last) {
    for (std::size_t x = 0; x < ids_.size(); ++x) {
      cnt(x, g) = cnt(x, last);
      cnt(g, x) = cnt(last, x);
    }
    cnt(g, g) = 0;
    ids_[g] = ids_[last];
    haves_[g] = haves_[last];
    index_[ids_[g]] = g;
  }
  ids_.pop_back();
  haves_.pop_back();
  index_.erase(it);
}

void InterestLedger::on_piece_gain(peer::PeerId id, std::uint32_t piece) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  const std::size_t g = it->second;
  assert(haves_[g]->has(piece));  // the bitfield already has the piece
  for (std::size_t x = 0; x < ids_.size(); ++x) {
    if (x == g) continue;
    if (haves_[x]->has(piece)) {
      // x also has it: the piece no longer makes g interested in x.
      std::uint16_t& c = cnt(g, x);
      assert(c > 0);
      if (--c == 0) --interested_;
    } else {
      // x lacks it: g just became (more) interesting to x.
      std::uint16_t& c = cnt(x, g);
      if (c++ == 0) ++interested_;
    }
  }
}

}  // namespace swarmlab::swarm
