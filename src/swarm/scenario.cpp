#include "swarm/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace swarmlab::swarm {

std::vector<CapacityClass> default_capacity_classes() {
  // Asymmetric residential mix, download ~8x upload (bytes/second).
  //
  // Capacities are scaled down with the content (DESIGN.md §5): the paper
  // observes multi-hour downloads of ~700 MB at tens of kB/s; with
  // contents scaled to tens of MB, these rates keep download times in the
  // thousands of simulated seconds, so a joining peer meets a swarm that
  // is leecher-rich for the whole measurement — as in the live torrents.
  return {
      {0.20, 6.0 * 1024, 48.0 * 1024},
      {0.40, 12.0 * 1024, 96.0 * 1024},
      {0.25, 24.0 * 1024, 192.0 * 1024},
      {0.15, 48.0 * 1024, 384.0 * 1024},
  };
}

const std::array<TorrentSpec, 26>& table1_torrents() {
  // Columns: id, #seeds, #leechers at experiment start, content size (MB)
  // — Table I of the paper.
  static const std::array<TorrentSpec, 26> kTable = {{
      {1, 0, 66, 700},      {2, 1, 2, 580},       {3, 1, 29, 350},
      {4, 1, 40, 800},      {5, 1, 50, 1419},     {6, 1, 130, 820},
      {7, 1, 713, 700},     {8, 1, 861, 3000},    {9, 1, 1055, 2000},
      {10, 1, 1207, 348},   {11, 1, 1411, 710},   {12, 3, 612, 1413},
      {13, 9, 30, 350},     {14, 20, 126, 184},   {15, 30, 230, 820},
      {16, 50, 18, 600},    {17, 102, 342, 200},  {18, 115, 19, 430},
      {19, 160, 5, 6},      {20, 177, 4657, 2000},{21, 462, 180, 2600},
      {22, 514, 1703, 349}, {23, 1197, 4151, 349},{24, 3697, 7341, 349},
      {25, 11641, 5418, 350},{26, 12612, 7052, 140},
  }};
  return kTable;
}

namespace {

/// Torrents the paper identifies as being in transient (startup) state:
/// the initial seed has not yet served every piece, so leechers start
/// cold. (§IV-A.1 discusses 1, 2, 4-9 as low-entropy/startup; torrent 7
/// is analysed as the steady-state exemplar in §IV-A.2.b, so it is warm.)
bool is_transient_torrent(int id) {
  switch (id) {
    case 1:
    case 2:
    case 4:
    case 5:
    case 6:
    case 8:
    case 9:
      return true;
    default:
      return false;
  }
}

}  // namespace

ScenarioConfig scenario_from_table1(int torrent_id,
                                    const ScaleLimits& limits) {
  const auto& table = table1_torrents();
  assert(torrent_id >= 1 && torrent_id <= static_cast<int>(table.size()));
  const TorrentSpec& spec = table[static_cast<std::size_t>(torrent_id - 1)];

  ScenarioConfig cfg;
  cfg.torrent_id = spec.id;
  cfg.name = "table1-torrent-" + std::to_string(spec.id);

  // Scale the population to the cap, preserving the seed/leecher ratio.
  const double total =
      static_cast<double>(spec.seeds) + static_cast<double>(spec.leechers);
  const double factor =
      total > limits.max_peers ? limits.max_peers / total : 1.0;
  cfg.initial_seeds =
      spec.seeds == 0
          ? 0
          : std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(
                       std::lround(spec.seeds * factor)));
  cfg.initial_leechers = std::max<std::uint32_t>(
      limits.min_leechers,
      static_cast<std::uint32_t>(std::lround(spec.leechers * factor)));

  // Scale content: keep relative ordering of sizes, bounded for
  // simulability (each piece is 256 KiB).
  cfg.num_pieces = std::clamp<std::uint32_t>(spec.size_mb * 2 / 5,
                                             limits.min_pieces,
                                             limits.max_pieces);
  cfg.piece_size = limits.piece_size;
  cfg.block_size = limits.block_size;
  cfg.duration = limits.duration;
  cfg.max_population =
      std::max<std::uint32_t>(limits.max_peers,
                              cfg.initial_seeds + cfg.initial_leechers) +
      40;

  if (is_transient_torrent(spec.id)) {
    // Startup phase: leechers begin with nothing; the initial seed's
    // upload capacity bounds rare-piece replication (§IV-A.2.a).
    cfg.leechers_warm = false;
    cfg.arrival_rate = 0.0;
    if (spec.id == 1) {
      // Zero seeds: the torrent is incomplete; leechers collectively hold
      // only part of the content.
      cfg.leechers_warm = true;
      cfg.warm_min = 0.10;
      cfg.warm_max = 0.60;
      cfg.dead_piece_fraction = 0.25;
    }
  } else {
    // Steady state: remote leechers hold partial content; fresh leechers
    // trickle in, finished ones seed for a while then leave.
    // Replacement arrivals roughly one population per mean download time
    // keep the leecher population stable, as in a live steady torrent.
    cfg.leechers_warm = true;
    cfg.arrival_rate = cfg.initial_leechers / 3000.0;
    cfg.seed_linger_mean = 900.0;
  }
  return cfg;
}

std::string validate_scenario(const ScenarioConfig& cfg) {
  const auto fail = [&cfg](std::string what) {
    return "scenario '" + cfg.name + "': " + std::move(what);
  };
  if (cfg.num_pieces == 0) return fail("num_pieces must be >= 1");
  if (cfg.piece_size == 0) return fail("piece_size must be >= 1");
  if (cfg.block_size == 0) return fail("block_size must be >= 1");
  if (cfg.block_size > cfg.piece_size) {
    return fail("block_size (" + std::to_string(cfg.block_size) +
                ") exceeds piece_size (" + std::to_string(cfg.piece_size) +
                "); blocks subdivide pieces");
  }
  if (cfg.warm_min > cfg.warm_max) {
    return fail("warm_min (" + std::to_string(cfg.warm_min) +
                ") exceeds warm_max (" + std::to_string(cfg.warm_max) +
                "); the warm-start completion range is empty");
  }
  if (cfg.warm_min < 0.0 || cfg.warm_max > 1.0) {
    return fail("warm range [" + std::to_string(cfg.warm_min) + ", " +
                std::to_string(cfg.warm_max) +
                "] must lie within [0, 1] (completion fractions)");
  }
  if (cfg.dead_piece_fraction < 0.0 || cfg.dead_piece_fraction > 1.0) {
    return fail("dead_piece_fraction (" +
                std::to_string(cfg.dead_piece_fraction) +
                ") must lie within [0, 1]");
  }
  if (cfg.arrival_rate < 0.0) {
    return fail("arrival_rate (" + std::to_string(cfg.arrival_rate) +
                ") must be >= 0");
  }
  if (cfg.duration <= 0.0) {
    return fail("duration (" + std::to_string(cfg.duration) +
                ") must be positive");
  }
  if (cfg.leecher_classes.empty()) {
    return fail("leecher_classes must name at least one capacity class");
  }
  return "";
}

// --- ScenarioRunner ---------------------------------------------------------

namespace {

/// Pass-through that rejects unrunnable configs before any simulator
/// state exists (the config is the first member, so this runs before the
/// Simulation/Swarm constructors see the bad geometry).
ScenarioConfig validated(ScenarioConfig cfg) {
  if (std::string err = validate_scenario(cfg); !err.empty()) {
    throw std::invalid_argument(std::move(err));
  }
  return cfg;
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioConfig cfg, std::uint64_t seed,
                               peer::PeerObserver* local_observer,
                               peer::SwarmObserver* swarm_observer)
    : cfg_(validated(std::move(cfg))),
      sim_(std::make_unique<sim::Simulation>(seed)),
      swarm_(std::make_unique<Swarm>(
          *sim_, cfg_.geometry(), cfg_.control_latency,
          net::make_network(cfg_.network_backend, *sim_,
                            cfg_.control_latency))),
      local_observer_(local_observer),
      swarm_observer_(swarm_observer) {
  // Subscribe before any peer spawns: initial peers start (and fire
  // observer callbacks) synchronously below.
  if (swarm_observer_ != nullptr &&
      cfg_.observation.scope == ObservationPlan::Scope::kAll) {
    swarm_->observers().attach_all(swarm_observer_);
  }
  if (cfg_.faults.any()) {
    // Fault scenarios need the liveness machinery: crashed peers are
    // detected by silence, lost requests by timeout. Enabled swarm-wide
    // (see ProtocolParams::liveness_timers) before any peer spawns.
    cfg_.remote_params.liveness_timers = true;
    cfg_.local_params.liveness_timers = true;
  }
  swarm_->tracker().set_member_expiry(cfg_.tracker_member_expiry);
  const std::uint32_t n = cfg_.geometry().num_pieces();
  dead_pieces_.assign(n, false);
  if (cfg_.dead_piece_fraction > 0.0) {
    const auto dead = static_cast<std::size_t>(
        std::lround(cfg_.dead_piece_fraction * n));
    for (const std::size_t p : sim_->rng().sample_indices(n, dead)) {
      dead_pieces_[p] = true;
    }
  }
  alive_pieces_.reserve(n);
  for (wire::PieceIndex p = 0; p < n; ++p) {
    if (!dead_pieces_[p]) alive_pieces_.push_back(p);
  }
  // Pre-size the slot table for the initial population plus the arrival
  // head-room the population cap allows — mega-swarm arrival storms then
  // grow it rarely instead of log(n) times.
  swarm_->reserve_peers(cfg_.initial_seeds + cfg_.initial_leechers +
                        cfg_.max_population + 1);
  spawn_initial_population();
  if (cfg_.arrival_rate > 0.0) schedule_arrivals();
  schedule_churn_tick();
}

ScenarioRunner::~ScenarioRunner() = default;

peer::Peer& ScenarioRunner::local_peer() {
  peer::Peer* p = swarm_->find_peer(local_id_);
  assert(p != nullptr);
  return *p;
}

const peer::Peer& ScenarioRunner::local_peer() const {
  const peer::Peer* p = swarm_->find_peer(local_id_);
  assert(p != nullptr);
  return *p;
}

void ScenarioRunner::spawn_initial_population() {
  // Initial seeds.
  for (std::uint32_t i = 0; i < cfg_.initial_seeds; ++i) {
    peer::PeerConfig pc;
    pc.params = cfg_.remote_params;
    pc.start_complete = true;
    pc.upload_capacity = cfg_.initial_seed_upload;
    pc.download_capacity = cfg_.initial_seed_download;
    const peer::PeerId id = swarm_->add_peer(pc);
    initial_seed_ids_.push_back(id);
    maybe_observe(id, /*is_local=*/false);
    swarm_->start_peer(id);
  }
  // Initial leechers.
  for (std::uint32_t i = 0; i < cfg_.initial_leechers; ++i) {
    spawn_leecher(cfg_.leechers_warm);
  }
  // The instrumented local peer.
  if (cfg_.spawn_local_peer) {
    peer::PeerConfig pc;
    pc.params = cfg_.local_params;
    pc.upload_capacity = cfg_.local_upload;
    pc.download_capacity = cfg_.local_download;
    pc.free_rider = cfg_.local_free_rider;
    local_id_ = swarm_->add_peer(pc, local_observer_);
    maybe_observe(local_id_, /*is_local=*/true);
    if (cfg_.local_join_time <= 0.0) {
      swarm_->start_peer(local_id_);
    } else {
      sim_->schedule_at(cfg_.local_join_time, [this] {
        swarm_->start_peer(local_id_);
      });
    }
  }
}

void ScenarioRunner::maybe_observe(peer::PeerId id, bool is_local) {
  if (swarm_observer_ == nullptr) return;
  switch (cfg_.observation.scope) {
    case ObservationPlan::Scope::kAll:
      return;  // attach_all in the constructor already covers this peer
    case ObservationPlan::Scope::kLocal:
      if (is_local) swarm_->observers().attach(id, swarm_observer_);
      return;
    case ObservationPlan::Scope::kSampled:
      if (is_local) {
        swarm_->observers().attach(id, swarm_observer_);
      } else if (observed_samples_ < cfg_.observation.sample_k) {
        ++observed_samples_;
        swarm_->observers().attach(id, swarm_observer_);
      }
      return;
  }
}

peer::PeerId ScenarioRunner::spawn_leecher(bool warm) {
  sim::Rng& rng = sim_->rng();
  peer::PeerConfig pc;
  pc.params = cfg_.remote_params;
  pc.free_rider = rng.chance(cfg_.free_rider_fraction);

  // Draw an access-link class.
  double roll = rng.uniform(0.0, 1.0);
  CapacityClass chosen = cfg_.leecher_classes.back();
  for (const CapacityClass& c : cfg_.leecher_classes) {
    if (roll < c.fraction) {
      chosen = c;
      break;
    }
    roll -= c.fraction;
  }
  pc.upload_capacity = chosen.up;
  pc.download_capacity = chosen.down;

  if (warm) {
    const std::uint32_t n = cfg_.geometry().num_pieces();
    const double frac = rng.uniform(cfg_.warm_min, cfg_.warm_max);
    const auto k = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(alive_pieces_.size())));
    pc.initial_pieces.assign(n, false);
    for (const std::size_t i : rng.sample_indices(alive_pieces_.size(), k)) {
      pc.initial_pieces[alive_pieces_[i]] = true;
    }
  }

  const peer::PeerId id = swarm_->add_peer(pc);
  maybe_observe(id, /*is_local=*/false);
  swarm_->start_peer(id);

  if (cfg_.leecher_abort_rate > 0.0) {
    const double lifetime = rng.exponential(1.0 / cfg_.leecher_abort_rate);
    sim_->schedule_in(lifetime, [this, id] {
      peer::Peer* p = swarm_->find_peer(id);
      if (p != nullptr && p->active() && !p->is_seed()) {
        swarm_->stop_peer(id);
      }
    });
  }
  return id;
}

void ScenarioRunner::schedule_arrivals() {
  const double gap = sim_->rng().exponential(1.0 / cfg_.arrival_rate);
  sim_->schedule_in(gap, [this] {
    if (swarm_->active_peers() < cfg_.max_population) {
      spawn_leecher(/*warm=*/false);
    }
    schedule_arrivals();
  });
}

void ScenarioRunner::schedule_churn_tick() {
  sim_->schedule_in(10.0, [this] {
    if (cfg_.seed_linger_mean > 0.0) {
      const double t = sim_->now();
      // Active ids are visited ascending — the same order (and thus the
      // same RNG draw sequence) as the historical full-id scan, which
      // only ever drew for active seeds. Departures mid-loop tombstone
      // entries without moving the vector, so iteration stays valid.
      for (const peer::PeerId id : swarm_->active_peer_ids()) {
        if (id == local_id_) continue;
        if (cfg_.initial_seeds_stay &&
            std::binary_search(initial_seed_ids_.begin(),
                               initial_seed_ids_.end(), id)) {
          continue;
        }
        peer::Peer* p = swarm_->find_peer(id);
        if (p == nullptr || !p->active() || !p->is_seed()) continue;
        auto it = departures_.find(id);
        if (it == departures_.end()) {
          departures_[id] =
              t + sim_->rng().exponential(cfg_.seed_linger_mean);
        } else if (t >= it->second) {
          swarm_->stop_peer(id);
          departures_.erase(it);
        }
      }
    }
    schedule_churn_tick();
  });
}

void ScenarioRunner::run() { sim_->run_until(cfg_.duration); }

double ScenarioRunner::run_until_local_complete(double extra) {
  assert(cfg_.spawn_local_peer);
  const double step = 50.0;
  // halted(): an attached ProgressMonitor tripped mid-step. run_until()
  // then returns without advancing the clock, so looping on it again
  // would spin the host forever — bail out and report the trip time.
  while (sim_->now() < cfg_.duration && !sim_->halted() &&
         local_peer().completion_time() < 0.0) {
    sim_->run_until(std::min(sim_->now() + step, cfg_.duration));
  }
  if (sim_->halted()) return sim_->now();
  const double done = local_peer().completion_time();
  const double stop_at =
      done >= 0.0 ? std::min(done + extra, cfg_.duration) : cfg_.duration;
  sim_->run_until(stop_at);
  return sim_->now();
}

}  // namespace swarmlab::swarm
