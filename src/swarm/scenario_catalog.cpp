#include "swarm/scenario_catalog.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace swarmlab::swarm {

namespace {

/// Fluid perf-ladder tier (bench_perf_sweep): flash-crowd swarms of
/// increasing population and content size. Parameters are frozen —
/// BENCH_perf.json numbers are only comparable across commits if the
/// workload never moves.
ScenarioConfig perf_tier(const char* name, std::uint32_t leechers,
                         std::uint32_t seeds, std::uint32_t pieces,
                         double arrival, std::uint32_t max_pop) {
  ScenarioConfig cfg;
  cfg.name = name;
  cfg.num_pieces = pieces;
  cfg.piece_size = 64 * 1024;
  cfg.block_size = 16 * 1024;
  cfg.initial_seeds = seeds;
  cfg.initial_leechers = leechers;
  cfg.leechers_warm = true;
  cfg.arrival_rate = arrival;
  cfg.max_population = max_pop;
  cfg.duration = 20000.0;
  return cfg;
}

/// Packet perf-ladder tier: bulk-transfer heavy so the segment hot path
/// (not the peer layer) dominates — larger pieces/blocks (256 KiB blocks
/// = 64 four-KiB segments per flow, the full train cap) and smaller
/// populations than the fluid tiers because the packet model executes
/// ~an order of magnitude more events per delivered byte.
ScenarioConfig pkt_tier(const char* name, std::uint32_t leechers,
                        std::uint32_t seeds, std::uint32_t pieces,
                        double arrival, std::uint32_t max_pop) {
  ScenarioConfig cfg;
  cfg.name = name;
  cfg.num_pieces = pieces;
  cfg.piece_size = 256 * 1024;
  cfg.block_size = 256 * 1024;
  cfg.initial_seeds = seeds;
  cfg.initial_leechers = leechers;
  cfg.leechers_warm = true;
  cfg.arrival_rate = arrival;
  cfg.max_population = max_pop;
  cfg.duration = 20000.0;
  cfg.network_backend = "packet";
  // The bulk-transfer regime the packet hot path is built for: narrow
  // active sets (1 regular + 1 optimistic slot) keep access links mostly
  // single-flow, uplinks faster than downlinks keep receiver downlinks
  // saturated, and a fast local peer keeps the measured run short. This
  // deliberately measures the segment machinery, not the choke dynamics
  // the fluid tiers cover.
  cfg.remote_params.regular_unchoke_slots = 1;
  cfg.remote_params.active_set_size = 2;
  cfg.local_params = cfg.remote_params;
  cfg.leecher_classes = {{1.0, 256.0 * 1024, 192.0 * 1024}};
  cfg.initial_seed_upload = 1024.0 * 1024;
  cfg.local_upload = 256.0 * 1024;
  return cfg;
}

/// Cold flash crowd at cross-backend-comparison scale
/// (bench_ext_backend_compare): the paper's §IV-A.1 startup regime,
/// which stresses rare-piece replication hardest.
ScenarioConfig flash_crowd_cold() {
  ScenarioConfig cfg;
  cfg.name = "flash-crowd-cold";
  cfg.num_pieces = 32;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 40;
  cfg.leechers_warm = false;
  cfg.arrival_rate = 0.0;
  cfg.duration = 25000.0;
  return cfg;
}

/// Poisson-arrival steady-state swarm matched to the Qiu-Srikant fluid
/// model (bench_ext_fluid_model): homogeneous capacities make the model
/// mapping exact; no local peer — it is a population study.
ScenarioConfig fluid_comparison() {
  ScenarioConfig cfg;
  cfg.name = "fluid-comparison";
  cfg.num_pieces = 48;  // 12 MiB content
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 30;
  cfg.leechers_warm = true;  // start near steady state
  cfg.arrival_rate = 0.03;   // lambda
  cfg.seed_linger_mean = 400.0;  // 1/gamma
  cfg.max_population = 400;
  cfg.spawn_local_peer = false;
  cfg.duration = 25000.0;
  const double up = 16.0 * 1024;  // bytes/s
  const double down = 128.0 * 1024;
  cfg.leecher_classes = {{1.0, up, down}};
  cfg.initial_seed_upload = up;
  return cfg;
}

/// Seed-state choke ablation base (bench_ablation_seed_choke, paper
/// §IV-B.3): the local peer plays the initial seed; ordinary leechers
/// get slow receive links so a fast free rider stands out. The bench
/// sets local_params.seed_choker per variant.
ScenarioConfig seed_choke_ablation() {
  ScenarioConfig cfg;
  cfg.name = "seed-choke-ablation";
  cfg.num_pieces = 64;
  cfg.initial_seeds = 0;  // the peer under test is the only seed
  cfg.initial_leechers = 40;
  cfg.leechers_warm = true;  // leechers always have something to want
  cfg.warm_min = 0.1;
  cfg.warm_max = 0.6;
  cfg.seed_linger_mean = 0.0;  // nobody leaves
  cfg.arrival_rate = 0.0;
  cfg.duration = 12000.0;
  cfg.local_upload = 40.0 * 1024;
  cfg.local_download = net::kUnlimited;
  cfg.leecher_classes = {
      {1.0, 12.0 * 1024, 8.0 * 1024},
  };
  return cfg;
}

/// Mega-swarm flash-crowd base (bench_ext_scale): 1k cold leechers hit a
/// handful of seeds, with an arrival storm refilling departures. The 4k
/// and 10k tiers are this entry through ScenarioBuilder::scale(4) /
/// scale(10). Packet-friendly geometry (one 256 KiB block per piece)
/// and homogeneous capacities keep the per-peer event count flat, so
/// tier cost scales with population — exactly the axis under test.
ScenarioConfig mega_flash() {
  ScenarioConfig cfg;
  cfg.name = "mega-flash";
  cfg.num_pieces = 64;  // 16 MiB content
  cfg.piece_size = 256 * 1024;
  cfg.block_size = 256 * 1024;
  cfg.initial_seeds = 4;
  cfg.initial_leechers = 1000;
  cfg.leechers_warm = false;  // flash crowd: everyone starts cold
  cfg.arrival_rate = 2.0;     // the arrival storm
  cfg.max_population = 1250;
  cfg.seed_linger_mean = 120.0;  // finished peers seed briefly, then go
  cfg.duration = 2400.0;
  cfg.remote_params.regular_unchoke_slots = 1;
  cfg.remote_params.active_set_size = 2;
  cfg.local_params = cfg.remote_params;
  cfg.leecher_classes = {{1.0, 256.0 * 1024, 192.0 * 1024}};
  cfg.initial_seed_upload = 1024.0 * 1024;
  cfg.local_upload = 256.0 * 1024;
  return cfg;
}

std::vector<CatalogEntry> build_catalog() {
  std::vector<CatalogEntry> catalog;
  catalog.reserve(26 + 13);
  // The 26 Table-I rows at the sweep benches' scale. Deep-dive benches
  // derive their larger variants with scenario_from_table1(id,
  // deep_dive_scale_limits()) — same construction, bigger caps.
  for (int id = 1; id <= 26; ++id) {
    CatalogEntry entry;
    entry.config = scenario_from_table1(id, sweep_scale_limits());
    entry.name = entry.config.name;
    entry.summary = "Table-I torrent " + std::to_string(id) +
                    " at sweep scale (Figs. 1, 9, 11; Table I)";
    catalog.push_back(std::move(entry));
  }
  const auto add = [&catalog](ScenarioConfig cfg, std::string summary) {
    CatalogEntry entry;
    entry.name = cfg.name;
    entry.summary = std::move(summary);
    entry.config = std::move(cfg);
    catalog.push_back(std::move(entry));
  };
  add(flash_crowd_cold(),
      "cold flash crowd, cross-backend comparison scale (§IV-A.1)");
  add(fluid_comparison(),
      "Poisson steady state matched to the Qiu-Srikant fluid model (§V)");
  add(seed_choke_ablation(),
      "seed-state choke ablation under a fast free rider (§IV-B.3)");
  add(mega_flash(),
      "mega-swarm flash crowd + arrival storm; scale() to 4k/10k");
  add(perf_tier("perf_small", 48, 1, 128, 0.02, 96),
      "fluid perf ladder: small (CI perf gate)");
  add(perf_tier("perf_medium", 150, 1, 384, 0.05, 220),
      "fluid perf ladder: medium");
  add(perf_tier("perf_large", 320, 2, 1024, 0.08, 420),
      "fluid perf ladder: large");
  add(perf_tier("perf_huge", 2000, 4, 256, 0.3, 2400),
      "fluid perf ladder: huge (mega-swarm population)");
  add(pkt_tier("pkt_small", 16, 1, 256, 0.005, 32),
      "packet perf ladder: small (CI perf gate)");
  add(pkt_tier("pkt_medium", 32, 1, 512, 0.01, 64),
      "packet perf ladder: medium");
  add(pkt_tier("pkt_large", 256, 2, 512, 0.05, 320),
      "packet perf ladder: large");
  add(pkt_tier("pkt_huge", 2048, 4, 128, 0.2, 2560),
      "packet perf ladder: huge (mega-swarm population)");
  return catalog;
}

}  // namespace

const std::vector<CatalogEntry>& scenario_catalog() {
  static const std::vector<CatalogEntry> kCatalog = build_catalog();
  return kCatalog;
}

const CatalogEntry* find_scenario(std::string_view name) {
  for (const CatalogEntry& entry : scenario_catalog()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

ScenarioConfig catalog_scenario(std::string_view name) {
  if (const CatalogEntry* entry = find_scenario(name); entry != nullptr) {
    return entry->config;
  }
  std::string msg = "unknown scenario '" + std::string(name) +
                    "'; catalog names:";
  for (const CatalogEntry& entry : scenario_catalog()) {
    msg += ' ';
    msg += entry.name;
  }
  throw std::invalid_argument(std::move(msg));
}

ScaleLimits sweep_scale_limits() {
  ScaleLimits limits;
  limits.max_peers = 120;
  limits.max_pieces = 96;
  limits.min_pieces = 16;
  limits.duration = 30000.0;
  return limits;
}

ScaleLimits deep_dive_scale_limits() {
  ScaleLimits limits;
  limits.max_peers = 200;
  limits.max_pieces = 200;
  limits.duration = 30000.0;
  return limits;
}

ScenarioBuilder& ScenarioBuilder::scale(double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("ScenarioBuilder::scale: factor (" +
                                std::to_string(factor) +
                                ") must be positive");
  }
  const auto scaled = [factor](std::uint32_t v) -> std::uint32_t {
    if (v == 0) return 0;
    const auto s = static_cast<std::uint32_t>(
        std::llround(static_cast<double>(v) * factor));
    return s > 0 ? s : 1;  // a scaled-down role never vanishes entirely
  };
  cfg_.initial_seeds = scaled(cfg_.initial_seeds);
  cfg_.initial_leechers = scaled(cfg_.initial_leechers);
  cfg_.max_population = scaled(cfg_.max_population);
  cfg_.arrival_rate *= factor;
  return *this;
}

ScenarioConfig ScenarioBuilder::build() const {
  if (std::string err = validate_scenario(cfg_); !err.empty()) {
    throw std::invalid_argument(std::move(err));
  }
  return cfg_;
}

}  // namespace swarmlab::swarm
