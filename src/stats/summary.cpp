#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace swarmlab::stats {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

}  // namespace swarmlab::stats
