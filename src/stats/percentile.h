// Percentile and quantile helpers over sample vectors.
#pragma once

#include <vector>

namespace swarmlab::stats {

/// Returns the p-th percentile (p in [0, 100]) of `samples` using linear
/// interpolation between closest ranks. The input need not be sorted.
/// Returns 0 for an empty input.
double percentile(std::vector<double> samples, double p);

/// Percentile of an already-sorted (ascending) sample vector.
double percentile_sorted(const std::vector<double>& sorted, double p);

/// Median shorthand.
inline double median(std::vector<double> samples) {
  return percentile(std::move(samples), 50.0);
}

}  // namespace swarmlab::stats
