#include "stats/histogram.h"

#include <cassert>
#include <cmath>

namespace swarmlab::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  assert(lo < hi && bins >= 1);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  assert(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::bin_lower(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

}  // namespace swarmlab::stats
