// Gini coefficient — a scalar fairness measure for contribution
// distributions (0 = perfectly equal shares, 1 = one peer takes all).
// Used to quantify the paper's Fig. 11 "same service time to each
// leecher" claim beyond the per-set bar shares.
#pragma once

#include <vector>

namespace swarmlab::stats {

/// Gini coefficient of non-negative values. Returns 0 for fewer than two
/// samples or an all-zero input.
double gini(std::vector<double> values);

}  // namespace swarmlab::stats
