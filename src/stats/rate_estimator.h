// Sliding-window transfer-rate estimation.
//
// The mainline 4.0.2 client the paper instruments estimates per-connection
// rates over a rolling window of at most 20 seconds; the choke algorithm
// in leecher state orders peers by this estimate every 10 seconds.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

namespace swarmlab::stats {

/// Bytes-per-second estimator over a trailing time window.
class RateEstimator {
 public:
  /// `window` is the trailing horizon in seconds (mainline: 20 s).
  explicit RateEstimator(double window = 20.0) : window_(window) {}

  /// Records `bytes` transferred at time `now` (seconds).
  void add(double now, std::uint64_t bytes);

  /// Estimated rate in bytes/second at time `now`. Events older than the
  /// window are discarded. The divisor is the elapsed window span, but at
  /// least the time since the first recorded event, so a fresh connection
  /// is not over-credited.
  [[nodiscard]] double rate(double now) const;

  /// Total bytes ever recorded (for contribution accounting).
  [[nodiscard]] std::uint64_t total_bytes() const { return total_; }

  /// Drops all window state (e.g., on choke) but keeps totals.
  void reset_window();

 private:
  void expire(double now) const;

  double window_;
  mutable std::deque<std::pair<double, std::uint64_t>> events_;
  mutable std::uint64_t window_bytes_ = 0;
  std::uint64_t total_ = 0;
  double first_event_time_ = -1.0;
};

}  // namespace swarmlab::stats
