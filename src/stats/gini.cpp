#include "stats/gini.h"

#include <algorithm>
#include <cstddef>

namespace swarmlab::stats {

double gini(std::vector<double> values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  std::sort(values.begin(), values.end());
  // G = (2 * sum_i i*x_(i) ) / (n * sum x) - (n + 1) / n, i = 1..n.
  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  if (total <= 0.0) return 0.0;
  const double dn = static_cast<double>(n);
  return 2.0 * weighted / (dn * total) - (dn + 1.0) / dn;
}

}  // namespace swarmlab::stats
