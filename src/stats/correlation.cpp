#include "stats/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <numeric>

namespace swarmlab::stats {

namespace {

/// Average ranks (1-based) with ties sharing their mean rank.
std::vector<double> ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

}  // namespace

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double nx = static_cast<double>(n);
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / nx;
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / nx;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  return pearson(ranks(xs), ranks(ys));
}

}  // namespace swarmlab::stats
