#include "stats/timeseries.h"

#include <algorithm>
#include <cassert>

namespace swarmlab::stats {

double TimeSeries::value_at(double time, double fallback) const {
  // Samples are appended in time order by construction (simulation time is
  // monotone), so binary search applies.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), time,
      [](double t, const Sample& s) { return t < s.time; });
  if (it == samples_.begin()) return fallback;
  return std::prev(it)->value;
}

std::vector<Sample> TimeSeries::downsample(std::size_t n) const {
  if (samples_.empty() || n == 0) return {};
  if (samples_.size() <= n) return samples_;
  std::vector<Sample> out;
  out.reserve(n);
  const double stride = static_cast<double>(samples_.size() - 1) /
                        static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(samples_[static_cast<std::size_t>(
        static_cast<double>(i) * stride + 0.5)]);
  }
  out.back() = samples_.back();
  return out;
}

double TimeSeries::min_value() const {
  assert(!samples_.empty());
  return std::min_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double TimeSeries::max_value() const {
  assert(!samples_.empty());
  return std::max_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

}  // namespace swarmlab::stats
