#include "stats/cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <utility>

namespace swarmlab::stats {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  sorted_ = false;
  ensure_sorted();
}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  assert(q > 0.0 && q <= 1.0);
  assert(!samples_.empty());
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[std::min(rank, samples_.size()) - 1];
}

double Cdf::min() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double Cdf::max() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> Cdf::log_spaced_points(
    double lo, double hi, std::size_t n) const {
  assert(lo > 0.0 && lo <= hi && n >= 2);
  std::vector<std::pair<double, double>> points;
  points.reserve(n);
  const double log_lo = std::log10(lo);
  const double log_hi = std::log10(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(n - 1);
    const double x = std::pow(10.0, log_lo + frac * (log_hi - log_lo));
    points.emplace_back(x, at(x));
  }
  return points;
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

std::string describe_quantiles(const Cdf& cdf) {
  if (cdf.empty()) return "(empty)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p10=%.3g p25=%.3g p50=%.3g p75=%.3g p90=%.3g p99=%.3g",
                cdf.quantile(0.10), cdf.quantile(0.25), cdf.quantile(0.50),
                cdf.quantile(0.75), cdf.quantile(0.90), cdf.quantile(0.99));
  return buf;
}

}  // namespace swarmlab::stats
