// Empirical cumulative distribution functions.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace swarmlab::stats {

/// An empirical CDF built from a sample set. Used to reproduce the
/// paper's interarrival-time CDF figures (Figs. 7 and 8).
class Cdf {
 public:
  Cdf() = default;

  /// Builds the CDF from (unsorted) samples.
  explicit Cdf(std::vector<double> samples);

  /// Adds a sample; invalidates nothing (samples are kept sorted lazily).
  void add(double x);

  /// F(x): fraction of samples <= x. 0 for an empty CDF.
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF: smallest sample value v with F(v) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Evaluates the CDF at `n` log-spaced points spanning [lo, hi]
  /// (the paper plots interarrival CDFs on a log-x axis). Each point is
  /// (x, F(x)). Precondition: 0 < lo <= hi.
  [[nodiscard]] std::vector<std::pair<double, double>> log_spaced_points(
      double lo, double hi, std::size_t n) const;

  /// Sorted access to the underlying samples.
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Renders a compact fixed-quantile table (for bench output), e.g.
/// "p10=0.31 p50=1.20 p90=4.75 p99=20.1".
std::string describe_quantiles(const Cdf& cdf);

}  // namespace swarmlab::stats
