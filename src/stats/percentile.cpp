#include "stats/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace swarmlab::stats {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

}  // namespace swarmlab::stats
