// Time-stamped sample series, used by the instrumentation samplers that
// back the paper's time-axis figures (Figs. 2-6).
#pragma once

#include <cstddef>
#include <vector>

namespace swarmlab::stats {

/// One (time, value) observation.
struct Sample {
  double time = 0.0;
  double value = 0.0;
};

/// Append-only series of (time, value) samples with downsampling helpers
/// so bench binaries can print a bounded number of rows.
class TimeSeries {
 public:
  void add(double time, double value) { samples_.push_back({time, value}); }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Last value at or before `time`; `fallback` if none.
  [[nodiscard]] double value_at(double time, double fallback = 0.0) const;

  /// At most `n` samples, evenly strided across the series (always
  /// includes the final sample when non-empty).
  [[nodiscard]] std::vector<Sample> downsample(std::size_t n) const;

  /// Minimum / maximum observed value. Precondition: !empty().
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace swarmlab::stats
