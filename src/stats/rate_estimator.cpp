#include "stats/rate_estimator.h"

#include <algorithm>

namespace swarmlab::stats {

void RateEstimator::add(double now, std::uint64_t bytes) {
  if (first_event_time_ < 0.0) first_event_time_ = now;
  events_.emplace_back(now, bytes);
  window_bytes_ += bytes;
  total_ += bytes;
  expire(now);
}

void RateEstimator::expire(double now) const {
  const double cutoff = now - window_;
  while (!events_.empty() && events_.front().first < cutoff) {
    window_bytes_ -= events_.front().second;
    events_.pop_front();
  }
}

double RateEstimator::rate(double now) const {
  expire(now);
  if (events_.empty()) return 0.0;
  // Span: full window once warmed up, otherwise time since first traffic.
  double span = window_;
  if (first_event_time_ >= 0.0) {
    span = std::min(window_, now - first_event_time_);
  }
  if (span <= 0.0) span = 1e-9;
  return static_cast<double>(window_bytes_) / span;
}

void RateEstimator::reset_window() {
  events_.clear();
  window_bytes_ = 0;
  first_event_time_ = -1.0;
}

}  // namespace swarmlab::stats
