// Fixed-width binned histogram.
#pragma once

#include <cstddef>
#include <vector>

namespace swarmlab::stats {

/// Counts observations into equal-width bins over [lo, hi); values outside
/// the range land in saturating under/overflow bins.
class Histogram {
 public:
  /// Precondition: lo < hi, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Center of a bin (for plotting).
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Lower edge of a bin.
  [[nodiscard]] double bin_lower(std::size_t bin) const;

  /// Fraction of all observations (including under/overflow) in a bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace swarmlab::stats
