// Streaming summary statistics (Welford's algorithm).
#pragma once

#include <cstddef>
#include <limits>

namespace swarmlab::stats {

/// Accumulates count/mean/variance/min/max of a stream of doubles without
/// storing the samples.
class Summary {
 public:
  /// Adds one observation.
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Min/max; +/-infinity when empty.
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace swarmlab::stats
