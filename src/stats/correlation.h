// Correlation coefficients, used by the Fig. 10 reproduction (unchoke
// count vs interested time) to quantify the paper's visual claim.
#pragma once

#include <vector>

namespace swarmlab::stats {

/// Pearson product-moment correlation of paired samples. Returns 0 when
/// fewer than two pairs or when either series is constant.
/// Precondition: xs.size() == ys.size().
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank correlation (Pearson on average ranks, handling ties).
/// Same edge-case conventions as pearson().
double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace swarmlab::stats
