// swarmlab: umbrella public header.
//
// A BitTorrent swarm simulation and measurement laboratory reproducing
// Legout, Urvoy-Keller & Michiardi, "Rarest First and Choke Algorithms
// Are Enough" (IMC 2006). See README.md and DESIGN.md.
#pragma once

#include "core/availability.h"    // piece copy counts & rarest set
#include "core/bitfield.h"        // piece possession
#include "core/choker.h"          // peer selection strategies
#include "core/params.h"          // protocol parameters
#include "core/piece_picker.h"    // piece selection strategies
#include "fault/fault_injector.h" // fault-plan execution
#include "fault/fault_plan.h"     // declarative failure schedules
#include "instrument/analyzers.h"    // figure analyzers
#include "instrument/choke_market.h" // equilibrium analysis (§IV-B.2)
#include "instrument/local_log.h" // instrumented-client log
#include "instrument/metrics.h"   // counters/gauges/histograms/series
#include "instrument/samplers.h"  // time-series samplers
#include "instrument/swarm_probe.h" // swarm-scope passive telemetry
#include "instrument/trace.h"     // full event trace + observer fan-out
#include "net/backend.h"          // network-backend registry
#include "net/fluid_network.h"    // flow-level bandwidth model
#include "net/network.h"          // abstract network backend
#include "peer/peer.h"            // the peer state machine
#include "sim/simulation.h"       // discrete-event engine
#include "stats/cdf.h"            // empirical CDFs
#include "stats/correlation.h"
#include "stats/gini.h"
#include "stats/percentile.h"
#include "viz/svg_plot.h"           // SVG figure rendering
#include "model/fluid_model.h"    // Qiu-Srikant analytical baseline
#include "runner/batch_runner.h"  // parallel batch scenario runner
#include "runner/json.h"          // machine-readable report writer
#include "swarm/entropy.h"        // swarm-wide entropy index
#include "swarm/interest_ledger.h" // incremental pair-interest ledger
#include "swarm/observer_hub.h"   // per-peer observer attachment
#include "swarm/scenario.h"       // Table-I rows & scenario runner
#include "swarm/scenario_catalog.h" // named scenarios & ScenarioBuilder
#include "swarm/swarm.h"          // the torrent fabric
#include "swarm/tracker.h"        // the tracker
#include "wire/bencode.h"         // metainfo encoding
#include "wire/message_stream.h"  // incremental stream decoding
#include "wire/messages.h"        // peer wire protocol codec
#include "wire/metainfo.h"        // .torrent handling
#include "wire/tracker_codec.h"   // tracker HTTP announce codec
#include "wire/sha1.h"            // piece integrity
