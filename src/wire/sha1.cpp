#include "wire/sha1.h"

#include <algorithm>
#include <cstring>

namespace swarmlab::wire {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

std::string Sha1Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t rem = static_cast<std::size_t>(total_bytes_ % 64);
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  update(std::span<const std::uint8_t>(kPad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - i * 8));
  }
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest.bytes[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest.bytes[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest.bytes[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Sha1Digest Sha1::hash(std::string_view data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace swarmlab::wire
