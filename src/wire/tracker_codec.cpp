#include "wire/tracker_codec.h"

#include <cctype>

#include "wire/messages.h"  // WireError

namespace swarmlab::wire {

namespace {

bool unreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

const char* event_name(TrackerEvent event) {
  switch (event) {
    case TrackerEvent::kStarted: return "started";
    case TrackerEvent::kStopped: return "stopped";
    case TrackerEvent::kCompleted: return "completed";
    case TrackerEvent::kNone: return "";
  }
  return "";
}

}  // namespace

std::string percent_encode(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (const char c : bytes) {
    if (unreserved(c)) {
      out.push_back(c);
    } else {
      const auto b = static_cast<std::uint8_t>(c);
      out.push_back('%');
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0x0F]);
    }
  }
  return out;
}

std::string build_announce_url(const std::string& base_url,
                               const AnnounceRequest& request) {
  std::string url = base_url;
  url.push_back('?');
  url += "info_hash=";
  url += percent_encode(std::string_view(
      reinterpret_cast<const char*>(request.info_hash.bytes.data()),
      request.info_hash.bytes.size()));
  url += "&peer_id=";
  url += percent_encode(std::string_view(
      reinterpret_cast<const char*>(request.peer_id.data()),
      request.peer_id.size()));
  url += "&port=" + std::to_string(request.port);
  url += "&uploaded=" + std::to_string(request.uploaded);
  url += "&downloaded=" + std::to_string(request.downloaded);
  url += "&left=" + std::to_string(request.left);
  url += "&numwant=" + std::to_string(request.numwant);
  if (request.compact) url += "&compact=1";
  if (request.event != TrackerEvent::kNone) {
    url += std::string("&event=") + event_name(request.event);
  }
  return url;
}

std::string encode_announce_response(const AnnounceResponse& response,
                                     bool compact) {
  BValue::Dict root;
  if (response.failure_reason.has_value()) {
    root.emplace("failure reason", BValue(*response.failure_reason));
    return bencode(BValue(std::move(root)));
  }
  root.emplace("interval",
               BValue(static_cast<std::int64_t>(response.interval)));
  root.emplace("complete",
               BValue(static_cast<std::int64_t>(response.complete)));
  root.emplace("incomplete",
               BValue(static_cast<std::int64_t>(response.incomplete)));
  if (compact) {
    std::string packed;
    packed.reserve(response.peers.size() * 6);
    for (const TrackerPeerEntry& p : response.peers) {
      packed.push_back(static_cast<char>(p.ipv4 >> 24));
      packed.push_back(static_cast<char>(p.ipv4 >> 16));
      packed.push_back(static_cast<char>(p.ipv4 >> 8));
      packed.push_back(static_cast<char>(p.ipv4));
      packed.push_back(static_cast<char>(p.port >> 8));
      packed.push_back(static_cast<char>(p.port));
    }
    root.emplace("peers", BValue(std::move(packed)));
  } else {
    BValue::List list;
    for (const TrackerPeerEntry& p : response.peers) {
      BValue::Dict entry;
      // Dotted-quad rendering for the dict (non-compact) form.
      const std::string ip = std::to_string((p.ipv4 >> 24) & 0xFF) + "." +
                             std::to_string((p.ipv4 >> 16) & 0xFF) + "." +
                             std::to_string((p.ipv4 >> 8) & 0xFF) + "." +
                             std::to_string(p.ipv4 & 0xFF);
      entry.emplace("ip", BValue(ip));
      entry.emplace("port", BValue(static_cast<std::int64_t>(p.port)));
      if (p.peer_id.has_value()) {
        entry.emplace("peer id", BValue(*p.peer_id));
      }
      list.emplace_back(std::move(entry));
    }
    root.emplace("peers", BValue(std::move(list)));
  }
  return bencode(BValue(std::move(root)));
}

namespace {

std::uint32_t parse_dotted_quad(const std::string& ip) {
  std::uint32_t out = 0;
  std::size_t at = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (at >= ip.size() || !std::isdigit(static_cast<unsigned char>(ip[at]))) {
      throw WireError("tracker: bad ip '" + ip + "'");
    }
    std::uint32_t value = 0;
    while (at < ip.size() &&
           std::isdigit(static_cast<unsigned char>(ip[at]))) {
      value = value * 10 + static_cast<std::uint32_t>(ip[at] - '0');
      if (value > 255) throw WireError("tracker: bad ip '" + ip + "'");
      ++at;
    }
    out = (out << 8) | value;
    if (octet < 3) {
      if (at >= ip.size() || ip[at] != '.') {
        throw WireError("tracker: bad ip '" + ip + "'");
      }
      ++at;
    }
  }
  if (at != ip.size()) throw WireError("tracker: bad ip '" + ip + "'");
  return out;
}

}  // namespace

AnnounceResponse decode_announce_response(std::string_view data) {
  const BValue root = bdecode(data);
  AnnounceResponse out;
  if (const BValue* failure = root.find("failure reason");
      failure != nullptr) {
    out.failure_reason = failure->as_string();
    return out;
  }
  out.interval =
      static_cast<std::uint32_t>(root.at("interval").as_int());
  if (const BValue* v = root.find("complete"); v != nullptr) {
    out.complete = static_cast<std::uint64_t>(v->as_int());
  }
  if (const BValue* v = root.find("incomplete"); v != nullptr) {
    out.incomplete = static_cast<std::uint64_t>(v->as_int());
  }
  const BValue& peers = root.at("peers");
  if (peers.is_string()) {
    // Compact form: 6 bytes per peer.
    const std::string& packed = peers.as_string();
    if (packed.size() % 6 != 0) {
      throw WireError("tracker: compact peers not a multiple of 6");
    }
    for (std::size_t at = 0; at < packed.size(); at += 6) {
      TrackerPeerEntry p;
      p.ipv4 = (static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(packed[at]))
                << 24) |
               (static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(packed[at + 1]))
                << 16) |
               (static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(packed[at + 2]))
                << 8) |
               static_cast<std::uint32_t>(
                   static_cast<std::uint8_t>(packed[at + 3]));
      p.port = static_cast<std::uint16_t>(
          (static_cast<std::uint16_t>(
               static_cast<std::uint8_t>(packed[at + 4]))
           << 8) |
          static_cast<std::uint8_t>(packed[at + 5]));
      out.peers.push_back(p);
    }
  } else {
    for (const BValue& entry : peers.as_list()) {
      TrackerPeerEntry p;
      p.ipv4 = parse_dotted_quad(entry.at("ip").as_string());
      p.port = static_cast<std::uint16_t>(entry.at("port").as_int());
      if (const BValue* id = entry.find("peer id"); id != nullptr) {
        p.peer_id = id->as_string();
      }
      out.peers.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace swarmlab::wire
