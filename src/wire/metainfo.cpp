#include "wire/metainfo.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "wire/messages.h"

namespace swarmlab::wire {

namespace {

BValue info_dict(const Metainfo& meta) {
  std::string pieces;
  pieces.reserve(meta.piece_hashes.size() * 20);
  for (const Sha1Digest& d : meta.piece_hashes) {
    pieces.append(reinterpret_cast<const char*>(d.bytes.data()),
                  d.bytes.size());
  }
  BValue::Dict info;
  if (meta.files.empty()) {
    info.emplace("length", BValue(static_cast<std::int64_t>(meta.length)));
  } else {
    BValue::List files;
    for (const FileEntry& f : meta.files) {
      BValue::Dict entry;
      entry.emplace("length",
                    BValue(static_cast<std::int64_t>(f.length)));
      // Path as a list of segments, per the spec.
      BValue::List segments;
      std::size_t start = 0;
      while (start <= f.path.size()) {
        const std::size_t slash = f.path.find('/', start);
        const std::size_t end =
            slash == std::string::npos ? f.path.size() : slash;
        segments.emplace_back(f.path.substr(start, end - start));
        if (slash == std::string::npos) break;
        start = slash + 1;
      }
      entry.emplace("path", BValue(std::move(segments)));
      files.emplace_back(std::move(entry));
    }
    info.emplace("files", BValue(std::move(files)));
  }
  info.emplace("name", BValue(meta.name));
  info.emplace("piece length",
               BValue(static_cast<std::int64_t>(meta.piece_length)));
  info.emplace("pieces", BValue(std::move(pieces)));
  return BValue(std::move(info));
}

}  // namespace

std::vector<std::uint8_t> synthetic_piece_bytes(const Metainfo& meta,
                                                PieceIndex p) {
  const ContentGeometry geo = meta.geometry();
  assert(p < geo.num_pieces());
  const std::uint32_t nbytes = geo.piece_bytes(p);
  std::vector<std::uint8_t> out(nbytes);
  // A cheap keyed PRF: xorshift seeded from the name hash and piece index.
  const Sha1Digest name_hash = Sha1::hash(meta.name);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 8; ++i) {
    state = (state * 31) ^ name_hash.bytes[i];
  }
  state ^= (std::uint64_t{p} + 1) * 0xD1B54A32D192ED03ull;
  if (state == 0) state = 1;  // xorshift must not start at zero
  for (std::uint32_t i = 0; i < nbytes; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    out[i] = static_cast<std::uint8_t>(state);
  }
  return out;
}

Metainfo make_synthetic_metainfo(const std::string& announce,
                                 const std::string& name,
                                 std::uint64_t length,
                                 std::uint32_t piece_length) {
  Metainfo meta;
  meta.announce = announce;
  meta.name = name;
  meta.length = length;
  meta.piece_length = piece_length;
  const std::uint32_t n = meta.geometry().num_pieces();
  meta.piece_hashes.reserve(n);
  for (PieceIndex p = 0; p < n; ++p) {
    const auto bytes = synthetic_piece_bytes(meta, p);
    meta.piece_hashes.push_back(Sha1::hash(
        std::span<const std::uint8_t>(bytes.data(), bytes.size())));
  }
  return meta;
}

std::string encode_metainfo(const Metainfo& meta) {
  BValue::Dict root;
  root.emplace("announce", BValue(meta.announce));
  root.emplace("info", info_dict(meta));
  return bencode(BValue(std::move(root)));
}

Metainfo decode_metainfo(std::string_view data) {
  const BValue root = bdecode(data);
  Metainfo meta;
  meta.announce = root.at("announce").as_string();
  const BValue& info = root.at("info");
  meta.name = info.at("name").as_string();
  const std::int64_t piece_length = info.at("piece length").as_int();
  std::int64_t length = 0;
  if (const BValue* files = info.find("files"); files != nullptr) {
    // Multi-file form: total length is the sum; paths re-join with '/'.
    for (const BValue& entry : files->as_list()) {
      FileEntry f;
      const std::int64_t file_len = entry.at("length").as_int();
      if (file_len < 0) throw WireError("metainfo: negative file length");
      f.length = static_cast<std::uint64_t>(file_len);
      const auto& segments = entry.at("path").as_list();
      if (segments.empty()) throw WireError("metainfo: empty file path");
      for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i > 0) f.path.push_back('/');
        f.path += segments[i].as_string();
      }
      length += file_len;
      meta.files.push_back(std::move(f));
    }
  } else {
    length = info.at("length").as_int();
  }
  if (length <= 0 || piece_length <= 0) {
    throw WireError("metainfo: non-positive length");
  }
  meta.length = static_cast<std::uint64_t>(length);
  meta.piece_length = static_cast<std::uint32_t>(piece_length);
  const std::string& pieces = info.at("pieces").as_string();
  if (pieces.size() % 20 != 0) {
    throw WireError("metainfo: pieces string not a multiple of 20");
  }
  const std::size_t n = pieces.size() / 20;
  if (n != meta.geometry().num_pieces()) {
    throw WireError("metainfo: piece hash count mismatch");
  }
  meta.piece_hashes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy_n(reinterpret_cast<const std::uint8_t*>(pieces.data()) + i * 20,
                20, meta.piece_hashes[i].bytes.begin());
  }
  return meta;
}

Sha1Digest info_hash(const Metainfo& meta) {
  return Sha1::hash(bencode(info_dict(meta)));
}

}  // namespace swarmlab::wire
