#include "wire/message_stream.h"

namespace swarmlab::wire {

std::vector<Message> MessageStream::feed(
    std::span<const std::uint8_t> data) {
  if (poisoned_) throw WireError("stream poisoned by earlier decode error");
  buffer_.insert(buffer_.end(), data.begin(), data.end());

  std::vector<Message> out;
  std::size_t at = 0;
  try {
    if (awaiting_handshake_) {
      if (buffer_.size() < Handshake::kEncodedSize) return out;
      handshake_ = decode_handshake(
          std::span<const std::uint8_t>(buffer_.data(), buffer_.size()));
      at = Handshake::kEncodedSize;
      awaiting_handshake_ = false;
    }
    while (at < buffer_.size()) {
      std::size_t consumed = 0;
      auto msg = decode_message(
          std::span<const std::uint8_t>(buffer_.data() + at,
                                        buffer_.size() - at),
          num_pieces_, consumed);
      if (!msg.has_value()) break;  // incomplete frame: wait for more
      out.push_back(std::move(*msg));
      ++decoded_;
      at += consumed;
    }
  } catch (const WireError&) {
    poisoned_ = true;
    throw;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(at));
  return out;
}

}  // namespace swarmlab::wire
