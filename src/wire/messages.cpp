#include "wire/messages.h"

#include <algorithm>
#include <cstring>
#include <span>

namespace swarmlab::wire {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t at) {
  return (static_cast<std::uint32_t>(data[at]) << 24) |
         (static_cast<std::uint32_t>(data[at + 1]) << 16) |
         (static_cast<std::uint32_t>(data[at + 2]) << 8) |
         static_cast<std::uint32_t>(data[at + 3]);
}

std::uint32_t bitfield_bytes(std::uint32_t num_pieces) {
  return (num_pieces + 7) / 8;
}

}  // namespace

const char* message_id_name(MessageId id) {
  switch (id) {
    case MessageId::kChoke: return "choke";
    case MessageId::kUnchoke: return "unchoke";
    case MessageId::kInterested: return "interested";
    case MessageId::kNotInterested: return "not_interested";
    case MessageId::kHave: return "have";
    case MessageId::kBitfield: return "bitfield";
    case MessageId::kRequest: return "request";
    case MessageId::kPiece: return "piece";
    case MessageId::kCancel: return "cancel";
    case MessageId::kSuggestPiece: return "suggest_piece";
    case MessageId::kHaveAll: return "have_all";
    case MessageId::kHaveNone: return "have_none";
    case MessageId::kRejectRequest: return "reject_request";
    case MessageId::kAllowedFast: return "allowed_fast";
  }
  return "unknown";
}

const char* message_name(const Message& msg) {
  return std::visit(
      [](const auto& m) -> const char* {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, KeepAliveMsg>) return "keep_alive";
        else if constexpr (std::is_same_v<T, ChokeMsg>) return "choke";
        else if constexpr (std::is_same_v<T, UnchokeMsg>) return "unchoke";
        else if constexpr (std::is_same_v<T, InterestedMsg>) return "interested";
        else if constexpr (std::is_same_v<T, NotInterestedMsg>)
          return "not_interested";
        else if constexpr (std::is_same_v<T, HaveMsg>) return "have";
        else if constexpr (std::is_same_v<T, BitfieldMsg>) return "bitfield";
        else if constexpr (std::is_same_v<T, RequestMsg>) return "request";
        else if constexpr (std::is_same_v<T, PieceMsg>) return "piece";
        else if constexpr (std::is_same_v<T, CancelMsg>) return "cancel";
        else if constexpr (std::is_same_v<T, SuggestPieceMsg>)
          return "suggest_piece";
        else if constexpr (std::is_same_v<T, HaveAllMsg>) return "have_all";
        else if constexpr (std::is_same_v<T, HaveNoneMsg>)
          return "have_none";
        else if constexpr (std::is_same_v<T, RejectRequestMsg>)
          return "reject_request";
        else return "allowed_fast";
      },
      msg);
}

std::vector<std::uint8_t> encode_message(const Message& msg,
                                         std::uint32_t num_pieces) {
  std::vector<std::uint8_t> out;
  const auto framed = [&out](MessageId id, std::uint32_t payload_len,
                             auto&& fill) {
    put_u32(out, 1 + payload_len);
    out.push_back(static_cast<std::uint8_t>(id));
    fill();
  };

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, KeepAliveMsg>) {
          put_u32(out, 0);
        } else if constexpr (std::is_same_v<T, ChokeMsg>) {
          framed(MessageId::kChoke, 0, [] {});
        } else if constexpr (std::is_same_v<T, UnchokeMsg>) {
          framed(MessageId::kUnchoke, 0, [] {});
        } else if constexpr (std::is_same_v<T, InterestedMsg>) {
          framed(MessageId::kInterested, 0, [] {});
        } else if constexpr (std::is_same_v<T, NotInterestedMsg>) {
          framed(MessageId::kNotInterested, 0, [] {});
        } else if constexpr (std::is_same_v<T, HaveMsg>) {
          framed(MessageId::kHave, 4, [&] { put_u32(out, m.piece); });
        } else if constexpr (std::is_same_v<T, BitfieldMsg>) {
          if (num_pieces == 0 || m.bits.size() != num_pieces) {
            throw WireError("bitfield: bit count does not match num_pieces");
          }
          const std::uint32_t nbytes = bitfield_bytes(num_pieces);
          framed(MessageId::kBitfield, nbytes, [&] {
            std::vector<std::uint8_t> packed(nbytes, 0);
            for (std::uint32_t i = 0; i < num_pieces; ++i) {
              if (m.bits[i]) packed[i / 8] |= static_cast<std::uint8_t>(
                  0x80u >> (i % 8));
            }
            out.insert(out.end(), packed.begin(), packed.end());
          });
        } else if constexpr (std::is_same_v<T, RequestMsg>) {
          framed(MessageId::kRequest, 12, [&] {
            put_u32(out, m.piece);
            put_u32(out, m.begin);
            put_u32(out, m.length);
          });
        } else if constexpr (std::is_same_v<T, PieceMsg>) {
          framed(MessageId::kPiece,
                 8 + static_cast<std::uint32_t>(m.data.size()), [&] {
                   put_u32(out, m.piece);
                   put_u32(out, m.begin);
                   out.insert(out.end(), m.data.begin(), m.data.end());
                 });
        } else if constexpr (std::is_same_v<T, CancelMsg>) {
          framed(MessageId::kCancel, 12, [&] {
            put_u32(out, m.piece);
            put_u32(out, m.begin);
            put_u32(out, m.length);
          });
        } else if constexpr (std::is_same_v<T, SuggestPieceMsg>) {
          framed(MessageId::kSuggestPiece, 4,
                 [&] { put_u32(out, m.piece); });
        } else if constexpr (std::is_same_v<T, HaveAllMsg>) {
          framed(MessageId::kHaveAll, 0, [] {});
        } else if constexpr (std::is_same_v<T, HaveNoneMsg>) {
          framed(MessageId::kHaveNone, 0, [] {});
        } else if constexpr (std::is_same_v<T, RejectRequestMsg>) {
          framed(MessageId::kRejectRequest, 12, [&] {
            put_u32(out, m.piece);
            put_u32(out, m.begin);
            put_u32(out, m.length);
          });
        } else {  // AllowedFastMsg
          framed(MessageId::kAllowedFast, 4,
                 [&] { put_u32(out, m.piece); });
        }
      },
      msg);
  return out;
}

std::optional<Message> decode_message(std::span<const std::uint8_t> data,
                                      std::uint32_t num_pieces,
                                      std::size_t& consumed) {
  consumed = 0;
  if (data.size() < 4) return std::nullopt;
  const std::uint32_t len = get_u32(data, 0);
  // Largest legal frame: piece header + one block; allow generous margin.
  constexpr std::uint32_t kMaxFrame = 1 + 8 + (1u << 20);
  if (len > kMaxFrame) throw WireError("frame length too large");
  if (data.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  consumed = 4 + len;
  if (len == 0) return Message{KeepAliveMsg{}};

  const auto id = static_cast<MessageId>(data[4]);
  const std::span<const std::uint8_t> payload = data.subspan(5, len - 1);
  const auto need = [&](std::size_t n, const char* what) {
    if (payload.size() != n) {
      throw WireError(std::string("bad payload length for ") + what);
    }
  };
  const auto need_at_least = [&](std::size_t n, const char* what) {
    if (payload.size() < n) {
      throw WireError(std::string("short payload for ") + what);
    }
  };

  switch (id) {
    case MessageId::kChoke:
      need(0, "choke");
      return Message{ChokeMsg{}};
    case MessageId::kUnchoke:
      need(0, "unchoke");
      return Message{UnchokeMsg{}};
    case MessageId::kInterested:
      need(0, "interested");
      return Message{InterestedMsg{}};
    case MessageId::kNotInterested:
      need(0, "not_interested");
      return Message{NotInterestedMsg{}};
    case MessageId::kHave: {
      need(4, "have");
      HaveMsg m{get_u32(payload, 0)};
      if (num_pieces != 0 && m.piece >= num_pieces) {
        throw WireError("have: piece index out of range");
      }
      return Message{m};
    }
    case MessageId::kBitfield: {
      if (num_pieces == 0) throw WireError("bitfield: unknown num_pieces");
      need(bitfield_bytes(num_pieces), "bitfield");
      BitfieldMsg m;
      m.bits.resize(num_pieces);
      for (std::uint32_t i = 0; i < num_pieces; ++i) {
        m.bits[i] = (payload[i / 8] & (0x80u >> (i % 8))) != 0;
      }
      // Spare bits in the final byte must be zero.
      for (std::uint32_t i = num_pieces; i < bitfield_bytes(num_pieces) * 8;
           ++i) {
        if ((payload[i / 8] & (0x80u >> (i % 8))) != 0) {
          throw WireError("bitfield: nonzero spare bits");
        }
      }
      return Message{std::move(m)};
    }
    case MessageId::kRequest: {
      need(12, "request");
      return Message{
          RequestMsg{get_u32(payload, 0), get_u32(payload, 4),
                     get_u32(payload, 8)}};
    }
    case MessageId::kPiece: {
      need_at_least(8, "piece");
      PieceMsg m;
      m.piece = get_u32(payload, 0);
      m.begin = get_u32(payload, 4);
      m.data.assign(payload.begin() + 8, payload.end());
      return Message{std::move(m)};
    }
    case MessageId::kCancel: {
      need(12, "cancel");
      return Message{
          CancelMsg{get_u32(payload, 0), get_u32(payload, 4),
                    get_u32(payload, 8)}};
    }
    case MessageId::kSuggestPiece: {
      need(4, "suggest_piece");
      SuggestPieceMsg m{get_u32(payload, 0)};
      if (num_pieces != 0 && m.piece >= num_pieces) {
        throw WireError("suggest_piece: piece index out of range");
      }
      return Message{m};
    }
    case MessageId::kHaveAll:
      need(0, "have_all");
      return Message{HaveAllMsg{}};
    case MessageId::kHaveNone:
      need(0, "have_none");
      return Message{HaveNoneMsg{}};
    case MessageId::kRejectRequest: {
      need(12, "reject_request");
      return Message{RejectRequestMsg{get_u32(payload, 0),
                                      get_u32(payload, 4),
                                      get_u32(payload, 8)}};
    }
    case MessageId::kAllowedFast: {
      need(4, "allowed_fast");
      AllowedFastMsg m{get_u32(payload, 0)};
      if (num_pieces != 0 && m.piece >= num_pieces) {
        throw WireError("allowed_fast: piece index out of range");
      }
      return Message{m};
    }
  }
  throw WireError("unknown message id " + std::to_string(data[4]));
}

std::vector<std::uint8_t> encode_handshake(const Handshake& hs) {
  std::vector<std::uint8_t> out;
  out.reserve(Handshake::kEncodedSize);
  out.push_back(static_cast<std::uint8_t>(Handshake::kProtocol.size()));
  out.insert(out.end(), Handshake::kProtocol.begin(),
             Handshake::kProtocol.end());
  out.insert(out.end(), hs.reserved.begin(), hs.reserved.end());
  out.insert(out.end(), hs.info_hash.bytes.begin(), hs.info_hash.bytes.end());
  out.insert(out.end(), hs.peer_id.begin(), hs.peer_id.end());
  return out;
}

Handshake decode_handshake(std::span<const std::uint8_t> data) {
  if (data.size() < Handshake::kEncodedSize) {
    throw WireError("handshake: short input");
  }
  if (data[0] != Handshake::kProtocol.size() ||
      !std::equal(Handshake::kProtocol.begin(), Handshake::kProtocol.end(),
                  data.begin() + 1,
                  [](char c, std::uint8_t b) {
                    return static_cast<std::uint8_t>(c) == b;
                  })) {
    throw WireError("handshake: bad protocol string");
  }
  Handshake hs;
  std::size_t at = 1 + Handshake::kProtocol.size();
  std::copy_n(data.begin() + at, hs.reserved.size(), hs.reserved.begin());
  at += hs.reserved.size();
  std::copy_n(data.begin() + at, hs.info_hash.bytes.size(),
              hs.info_hash.bytes.begin());
  at += hs.info_hash.bytes.size();
  std::copy_n(data.begin() + at, hs.peer_id.size(), hs.peer_id.begin());
  return hs;
}

}  // namespace swarmlab::wire
