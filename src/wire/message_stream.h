// Incremental peer-wire stream decoding.
//
// A MessageStream consumes a TCP byte stream in arbitrary chunks and
// yields complete messages as they become available — what a real client
// does on every socket read. Handles the leading handshake, partial
// frames across reads, and malformed input (which poisons the stream, as
// a client would drop the connection).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "wire/messages.h"

namespace swarmlab::wire {

/// Stateful decoder for one direction of a peer-wire connection.
class MessageStream {
 public:
  /// `num_pieces` sizes/validates bitfield payloads; `expect_handshake`
  /// makes the first kEncodedSize bytes parse as the handshake.
  explicit MessageStream(std::uint32_t num_pieces,
                         bool expect_handshake = true)
      : num_pieces_(num_pieces), awaiting_handshake_(expect_handshake) {}

  /// Appends raw bytes and returns every message completed by them, in
  /// order. Throws WireError on malformed input; afterwards the stream
  /// is poisoned and every further feed() throws.
  std::vector<Message> feed(std::span<const std::uint8_t> data);

  /// The peer's handshake, once received.
  [[nodiscard]] const std::optional<Handshake>& handshake() const {
    return handshake_;
  }

  /// Bytes buffered waiting for the rest of a frame.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

  /// True after a decode error; the connection should be dropped.
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// Total messages decoded (diagnostics).
  [[nodiscard]] std::uint64_t messages_decoded() const { return decoded_; }

 private:
  std::uint32_t num_pieces_;
  bool awaiting_handshake_;
  bool poisoned_ = false;
  std::optional<Handshake> handshake_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t decoded_ = 0;
};

}  // namespace swarmlab::wire
