// Content geometry: how a file maps onto pieces and blocks.
//
// BitTorrent splits a file into pieces (typically 256 KiB) and each piece
// into blocks (16 KiB), the on-the-wire transfer unit. Only complete,
// hash-verified pieces may be served to other peers.
#pragma once

#include <cassert>
#include <cstdint>

namespace swarmlab::wire {

/// Index of a piece within the content.
using PieceIndex = std::uint32_t;

/// Index of a block within its piece.
using BlockIndex = std::uint32_t;

/// Default mainline sizes (see paper §II-B).
inline constexpr std::uint32_t kDefaultPieceSize = 256 * 1024;
inline constexpr std::uint32_t kDefaultBlockSize = 16 * 1024;  // 2^14

/// A (piece, block) pair naming one transfer unit.
struct BlockRef {
  PieceIndex piece = 0;
  BlockIndex block = 0;

  bool operator==(const BlockRef&) const = default;
  auto operator<=>(const BlockRef&) const = default;
};

/// Immutable description of how content bytes divide into pieces/blocks.
class ContentGeometry {
 public:
  /// Preconditions: total > 0, 0 < block <= piece, piece % block == 0.
  ContentGeometry(std::uint64_t total_bytes,
                  std::uint32_t piece_size = kDefaultPieceSize,
                  std::uint32_t block_size = kDefaultBlockSize)
      : total_bytes_(total_bytes),
        piece_size_(piece_size),
        block_size_(block_size) {
    assert(total_bytes_ > 0);
    assert(block_size_ > 0 && block_size_ <= piece_size_);
    assert(piece_size_ % block_size_ == 0);
  }

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint32_t piece_size() const { return piece_size_; }
  [[nodiscard]] std::uint32_t block_size() const { return block_size_; }

  /// Number of pieces (last one may be short).
  [[nodiscard]] std::uint32_t num_pieces() const {
    return static_cast<std::uint32_t>((total_bytes_ + piece_size_ - 1) /
                                      piece_size_);
  }

  /// Byte length of piece `p`.
  [[nodiscard]] std::uint32_t piece_bytes(PieceIndex p) const {
    assert(p < num_pieces());
    if (p + 1 < num_pieces()) return piece_size_;
    const std::uint64_t rem = total_bytes_ - std::uint64_t{p} * piece_size_;
    return static_cast<std::uint32_t>(rem);
  }

  /// Number of blocks in piece `p`.
  [[nodiscard]] std::uint32_t blocks_in_piece(PieceIndex p) const {
    return (piece_bytes(p) + block_size_ - 1) / block_size_;
  }

  /// Byte length of block `b` of piece `p` (last block may be short).
  [[nodiscard]] std::uint32_t block_bytes(BlockRef ref) const {
    const std::uint32_t nblocks = blocks_in_piece(ref.piece);
    assert(ref.block < nblocks);
    if (ref.block + 1 < nblocks) return block_size_;
    return piece_bytes(ref.piece) -
           (nblocks - 1) * block_size_;
  }

  /// Byte offset of block `b` within its piece (the wire `request` begin).
  [[nodiscard]] std::uint32_t block_offset(BlockRef ref) const {
    return ref.block * block_size_;
  }

  /// Block index for a byte offset within a piece.
  [[nodiscard]] BlockIndex block_at_offset(std::uint32_t begin) const {
    assert(begin % block_size_ == 0);
    return begin / block_size_;
  }

  /// Total number of blocks in the content.
  [[nodiscard]] std::uint64_t total_blocks() const {
    std::uint64_t full_pieces = num_pieces() - 1;
    return full_pieces * (piece_size_ / block_size_) +
           blocks_in_piece(num_pieces() - 1);
  }

  bool operator==(const ContentGeometry&) const = default;

 private:
  std::uint64_t total_bytes_;
  std::uint32_t piece_size_;
  std::uint32_t block_size_;
};

}  // namespace swarmlab::wire
