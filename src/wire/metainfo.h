// .torrent metainfo: construction, bencoding, parsing, and info-hash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wire/bencode.h"
#include "wire/geometry.h"
#include "wire/sha1.h"

namespace swarmlab::wire {

/// One file of a multi-file torrent. `path` is the '/'-joined relative
/// path below the torrent's name directory.
struct FileEntry {
  std::string path;
  std::uint64_t length = 0;

  bool operator==(const FileEntry&) const = default;
};

/// The metainfo a .torrent file carries. `files` empty = the single-file
/// form (the paper's torrents are single contents); non-empty = the
/// multi-file form, where `length` is the total across files and pieces
/// run over the concatenation.
struct Metainfo {
  std::string announce;       // tracker URL
  std::string name;           // file name / content directory name
  std::uint64_t length = 0;   // total content size in bytes
  std::uint32_t piece_length = kDefaultPieceSize;
  std::vector<Sha1Digest> piece_hashes;  // one per piece
  std::vector<FileEntry> files;          // multi-file form when non-empty

  /// Geometry implied by length/piece_length.
  [[nodiscard]] ContentGeometry geometry() const {
    return ContentGeometry(length, piece_length);
  }

  bool operator==(const Metainfo&) const = default;
};

/// Builds a metainfo for synthetic content: piece i's bytes are a
/// deterministic function of (name, i), so every simulated peer agrees on
/// hashes without storing content. Returns the metainfo with all piece
/// hashes filled in.
Metainfo make_synthetic_metainfo(const std::string& announce,
                                 const std::string& name,
                                 std::uint64_t length,
                                 std::uint32_t piece_length =
                                     kDefaultPieceSize);

/// Deterministic synthetic bytes for piece `p` of `meta` (the content a
/// real client would read from disk).
std::vector<std::uint8_t> synthetic_piece_bytes(const Metainfo& meta,
                                                PieceIndex p);

/// Serializes to the canonical .torrent bencoding.
std::string encode_metainfo(const Metainfo& meta);

/// Parses a .torrent; throws BencodeError/WireError on malformed input.
Metainfo decode_metainfo(std::string_view data);

/// SHA-1 of the bencoded info dictionary — the torrent's identity.
Sha1Digest info_hash(const Metainfo& meta);

}  // namespace swarmlab::wire
