// Bencode (the BitTorrent metainfo encoding), implemented from scratch.
//
// Grammar:
//   integer:  i<signed ascii digits>e
//   string:   <length>:<bytes>
//   list:     l<values>e
//   dict:     d<string,value pairs>e   (keys sorted, byte-wise)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace swarmlab::wire {

/// Thrown on malformed bencode input or on type-mismatched access.
class BencodeError : public std::runtime_error {
 public:
  explicit BencodeError(const std::string& what) : std::runtime_error(what) {}
};

/// A bencoded value: integer, byte string, list, or dictionary.
class BValue {
 public:
  using List = std::vector<BValue>;
  using Dict = std::map<std::string, BValue>;  // std::map keeps keys sorted

  /// Defaults to the integer 0.
  BValue() : kind_(Kind::kInt) {}
  BValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}           // NOLINT
  BValue(int v) : BValue(std::int64_t{v}) {}  // NOLINT: disambiguates 0
  BValue(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}  // NOLINT
  BValue(const char* v) : BValue(std::string(v)) {}                // NOLINT
  BValue(List v) : kind_(Kind::kList), list_(std::move(v)) {}      // NOLINT
  BValue(Dict v) : kind_(Kind::kDict), dict_(std::move(v)) {}      // NOLINT

  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_list() const { return kind_ == Kind::kList; }
  [[nodiscard]] bool is_dict() const { return kind_ == Kind::kDict; }

  /// Typed accessors; throw BencodeError on kind mismatch.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const List& as_list() const;
  [[nodiscard]] const Dict& as_dict() const;
  List& as_list();
  Dict& as_dict();

  /// Dictionary lookup; throws BencodeError when the key is absent or the
  /// value is not a dict.
  [[nodiscard]] const BValue& at(const std::string& key) const;

  /// Dictionary lookup returning nullptr when absent.
  [[nodiscard]] const BValue* find(const std::string& key) const;

  bool operator==(const BValue& other) const = default;

 private:
  enum class Kind { kInt, kString, kList, kDict };

  Kind kind_;
  std::int64_t int_ = 0;
  std::string str_;
  List list_;
  Dict dict_;
};

/// Serializes a value to its canonical bencoding.
std::string bencode(const BValue& value);

/// Parses exactly one bencoded value; throws BencodeError on malformed
/// input or trailing bytes.
BValue bdecode(std::string_view data);

/// Parses one value starting at data[pos], advancing pos past it. Allows
/// trailing bytes (used for embedded values).
BValue bdecode_prefix(std::string_view data, std::size_t& pos);

}  // namespace swarmlab::wire
