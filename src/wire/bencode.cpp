#include "wire/bencode.h"

#include <cctype>
#include <limits>

namespace swarmlab::wire {

std::int64_t BValue::as_int() const {
  if (!is_int()) throw BencodeError("bencode: not an integer");
  return int_;
}

const std::string& BValue::as_string() const {
  if (!is_string()) throw BencodeError("bencode: not a string");
  return str_;
}

const BValue::List& BValue::as_list() const {
  if (!is_list()) throw BencodeError("bencode: not a list");
  return list_;
}

const BValue::Dict& BValue::as_dict() const {
  if (!is_dict()) throw BencodeError("bencode: not a dict");
  return dict_;
}

BValue::List& BValue::as_list() {
  if (!is_list()) throw BencodeError("bencode: not a list");
  return list_;
}

BValue::Dict& BValue::as_dict() {
  if (!is_dict()) throw BencodeError("bencode: not a dict");
  return dict_;
}

const BValue& BValue::at(const std::string& key) const {
  const BValue* v = find(key);
  if (v == nullptr) throw BencodeError("bencode: missing key '" + key + "'");
  return *v;
}

const BValue* BValue::find(const std::string& key) const {
  const auto& d = as_dict();
  const auto it = d.find(key);
  return it == d.end() ? nullptr : &it->second;
}

namespace {

void encode_to(const BValue& value, std::string& out) {
  if (value.is_int()) {
    out.push_back('i');
    out.append(std::to_string(value.as_int()));
    out.push_back('e');
  } else if (value.is_string()) {
    const std::string& s = value.as_string();
    out.append(std::to_string(s.size()));
    out.push_back(':');
    out.append(s);
  } else if (value.is_list()) {
    out.push_back('l');
    for (const BValue& item : value.as_list()) encode_to(item, out);
    out.push_back('e');
  } else {
    out.push_back('d');
    for (const auto& [key, item] : value.as_dict()) {
      encode_to(BValue(key), out);
      encode_to(item, out);
    }
    out.push_back('e');
  }
}

class Decoder {
 public:
  Decoder(std::string_view data, std::size_t pos) : data_(data), pos_(pos) {}

  BValue decode_value(int depth) {
    if (depth > kMaxDepth) throw BencodeError("bencode: nesting too deep");
    const char c = peek();
    if (c == 'i') return decode_int();
    if (c >= '0' && c <= '9') return decode_string();
    if (c == 'l') return decode_list(depth);
    if (c == 'd') return decode_dict(depth);
    throw BencodeError("bencode: unexpected byte at offset " +
                       std::to_string(pos_));
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  static constexpr int kMaxDepth = 64;

  char peek() const {
    if (pos_ >= data_.size()) throw BencodeError("bencode: truncated input");
    return data_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char want) {
    const char got = take();
    if (got != want) {
      throw BencodeError(std::string("bencode: expected '") + want + "'");
    }
  }

  std::int64_t decode_digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      throw BencodeError("bencode: digit expected");
    }
    std::int64_t v = 0;
    while (pos_ < data_.size() &&
           std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      const int digit = data_[pos_] - '0';
      if (v > (std::numeric_limits<std::int64_t>::max() - digit) / 10) {
        throw BencodeError("bencode: integer overflow");
      }
      v = v * 10 + digit;
      ++pos_;
    }
    return v;
  }

  BValue decode_int() {
    expect('i');
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    // Canonical form forbids leading zeros (except "0") and "-0".
    const char first = peek();
    const std::size_t digits_start = pos_;
    const std::int64_t magnitude = decode_digits();
    if (first == '0' && pos_ - digits_start > 1) {
      throw BencodeError("bencode: leading zero in integer");
    }
    if (negative && magnitude == 0) {
      throw BencodeError("bencode: negative zero");
    }
    expect('e');
    return BValue(negative ? -magnitude : magnitude);
  }

  BValue decode_string() {
    const char first = peek();
    const std::size_t digits_start = pos_;
    const std::int64_t len = decode_digits();
    if (first == '0' && pos_ - digits_start > 1) {
      throw BencodeError("bencode: leading zero in string length");
    }
    expect(':');
    if (static_cast<std::uint64_t>(len) > data_.size() - pos_) {
      throw BencodeError("bencode: string length exceeds input");
    }
    std::string s(data_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    return BValue(std::move(s));
  }

  BValue decode_list(int depth) {
    expect('l');
    BValue::List items;
    while (peek() != 'e') items.push_back(decode_value(depth + 1));
    expect('e');
    return BValue(std::move(items));
  }

  BValue decode_dict(int depth) {
    expect('d');
    BValue::Dict dict;
    std::string prev_key;
    bool first = true;
    while (peek() != 'e') {
      BValue key = decode_string();
      const std::string& k = key.as_string();
      if (!first && k <= prev_key) {
        throw BencodeError("bencode: dict keys not strictly ascending");
      }
      first = false;
      prev_key = k;
      dict.emplace(k, decode_value(depth + 1));
    }
    expect('e');
    return BValue(std::move(dict));
  }

  std::string_view data_;
  std::size_t pos_;
};

}  // namespace

std::string bencode(const BValue& value) {
  std::string out;
  encode_to(value, out);
  return out;
}

BValue bdecode_prefix(std::string_view data, std::size_t& pos) {
  Decoder decoder(data, pos);
  BValue value = decoder.decode_value(0);
  pos = decoder.pos();
  return value;
}

BValue bdecode(std::string_view data) {
  std::size_t pos = 0;
  BValue value = bdecode_prefix(data, pos);
  if (pos != data.size()) {
    throw BencodeError("bencode: trailing bytes after value");
  }
  return value;
}

}  // namespace swarmlab::wire
