// The BitTorrent peer wire protocol: message model and binary codec.
//
// Framing: a 4-byte big-endian length prefix, then (except for keep-alive,
// whose length is 0) a 1-byte message id and the payload.
//
// The simulator exchanges the typed structs below directly for speed; the
// binary codec exists so every simulated message has a validated wire
// form (round-trip tested) and so the library is usable as a real
// protocol codec.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "wire/geometry.h"
#include "wire/sha1.h"

namespace swarmlab::wire {

/// Thrown on malformed wire input.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Message ids as they appear on the wire (0-8: BEP 3; 13-17: the Fast
/// Extension, BEP 6, negotiated via a handshake reserved bit).
enum class MessageId : std::uint8_t {
  kChoke = 0,
  kUnchoke = 1,
  kInterested = 2,
  kNotInterested = 3,
  kHave = 4,
  kBitfield = 5,
  kRequest = 6,
  kPiece = 7,
  kCancel = 8,
  kSuggestPiece = 13,
  kHaveAll = 14,
  kHaveNone = 15,
  kRejectRequest = 16,
  kAllowedFast = 17,
};

/// Human-readable message-id name (for instrumentation logs).
const char* message_id_name(MessageId id);

// --- Message payload structs -------------------------------------------

struct KeepAliveMsg {
  bool operator==(const KeepAliveMsg&) const = default;
};

struct ChokeMsg {
  bool operator==(const ChokeMsg&) const = default;
};

struct UnchokeMsg {
  bool operator==(const UnchokeMsg&) const = default;
};

struct InterestedMsg {
  bool operator==(const InterestedMsg&) const = default;
};

struct NotInterestedMsg {
  bool operator==(const NotInterestedMsg&) const = default;
};

/// Announces possession of one newly completed piece.
struct HaveMsg {
  PieceIndex piece = 0;
  bool operator==(const HaveMsg&) const = default;
};

/// Initial possession map, one bit per piece, high bit first.
struct BitfieldMsg {
  std::vector<bool> bits;
  bool operator==(const BitfieldMsg&) const = default;
};

/// Requests one block: piece index, byte offset within piece, length.
struct RequestMsg {
  PieceIndex piece = 0;
  std::uint32_t begin = 0;
  std::uint32_t length = 0;
  bool operator==(const RequestMsg&) const = default;
};

/// Carries one block of data.
struct PieceMsg {
  PieceIndex piece = 0;
  std::uint32_t begin = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const PieceMsg&) const = default;
};

/// Cancels a previously issued request (end game mode).
struct CancelMsg {
  PieceIndex piece = 0;
  std::uint32_t begin = 0;
  std::uint32_t length = 0;
  bool operator==(const CancelMsg&) const = default;
};

// --- Fast Extension (BEP 6) ----------------------------------------------

/// Hints the peer to fetch this piece (e.g., from a cache).
struct SuggestPieceMsg {
  PieceIndex piece = 0;
  bool operator==(const SuggestPieceMsg&) const = default;
};

/// Replaces an all-ones bitfield (a seed's announcement).
struct HaveAllMsg {
  bool operator==(const HaveAllMsg&) const = default;
};

/// Replaces an all-zero bitfield.
struct HaveNoneMsg {
  bool operator==(const HaveNoneMsg&) const = default;
};

/// Explicitly declines a request (instead of silently dropping it).
struct RejectRequestMsg {
  PieceIndex piece = 0;
  std::uint32_t begin = 0;
  std::uint32_t length = 0;
  bool operator==(const RejectRequestMsg&) const = default;
};

/// Grants download of one piece even while choked.
struct AllowedFastMsg {
  PieceIndex piece = 0;
  bool operator==(const AllowedFastMsg&) const = default;
};

/// Any peer-wire message.
using Message =
    std::variant<KeepAliveMsg, ChokeMsg, UnchokeMsg, InterestedMsg,
                 NotInterestedMsg, HaveMsg, BitfieldMsg, RequestMsg, PieceMsg,
                 CancelMsg, SuggestPieceMsg, HaveAllMsg, HaveNoneMsg,
                 RejectRequestMsg, AllowedFastMsg>;

/// Name of the message's type (for logs).
const char* message_name(const Message& msg);

/// Serializes `msg` with its length prefix. `num_pieces` sizes the
/// bitfield payload (required only for BitfieldMsg; pass 0 otherwise).
std::vector<std::uint8_t> encode_message(const Message& msg,
                                         std::uint32_t num_pieces = 0);

/// Decodes one framed message from the start of `data`, writing the number
/// of consumed bytes to `consumed`. `num_pieces` validates/interprets the
/// bitfield payload. Returns std::nullopt when `data` holds an incomplete
/// frame (need more bytes); throws WireError on malformed input.
std::optional<Message> decode_message(std::span<const std::uint8_t> data,
                                      std::uint32_t num_pieces,
                                      std::size_t& consumed);

// --- Handshake -----------------------------------------------------------

/// The 68-byte connection preamble.
struct Handshake {
  static constexpr std::size_t kEncodedSize = 68;
  static constexpr std::string_view kProtocol = "BitTorrent protocol";
  /// Fast Extension flag: bit 0x04 of reserved byte 7 (BEP 6).
  static constexpr std::uint8_t kFastExtensionBit = 0x04;

  std::array<std::uint8_t, 8> reserved{};
  Sha1Digest info_hash;
  std::array<std::uint8_t, 20> peer_id{};

  [[nodiscard]] bool supports_fast_extension() const {
    return (reserved[7] & kFastExtensionBit) != 0;
  }
  void set_fast_extension(bool on) {
    if (on) {
      reserved[7] |= kFastExtensionBit;
    } else {
      reserved[7] &= static_cast<std::uint8_t>(~kFastExtensionBit);
    }
  }

  bool operator==(const Handshake&) const = default;
};

std::vector<std::uint8_t> encode_handshake(const Handshake& hs);
Handshake decode_handshake(std::span<const std::uint8_t> data);

}  // namespace swarmlab::wire
