// SHA-1 (FIPS 180-1), implemented from scratch.
//
// BitTorrent uses SHA-1 for piece integrity (one 20-byte digest per piece
// in the .torrent metainfo) and for the info-hash identifying a torrent.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace swarmlab::wire {

/// A 20-byte SHA-1 digest.
struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  bool operator==(const Sha1Digest&) const = default;

  /// Lowercase hex rendering, e.g. "a9993e36...".
  [[nodiscard]] std::string hex() const;
};

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1() { reset(); }

  /// Restores the initial state.
  void reset();

  /// Absorbs `data`.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalizes and returns the digest. The hasher must be reset() before
  /// further use.
  Sha1Digest finish();

  /// One-shot convenience.
  static Sha1Digest hash(std::span<const std::uint8_t> data);
  static Sha1Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace swarmlab::wire
