// Tracker HTTP protocol codec (BEP 3 announce + BEP 23 compact peers).
//
// The announce is an HTTP GET whose query string carries the binary
// info-hash and peer-id percent-encoded; the response is a bencoded
// dictionary with the re-announce interval and the peer list, either as
// a list of dicts or (compact form) as packed 6-byte IPv4:port entries.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wire/bencode.h"
#include "wire/sha1.h"

namespace swarmlab::wire {

/// Announce `event` parameter values.
enum class TrackerEvent { kNone, kStarted, kStopped, kCompleted };

/// One announce request (the client -> tracker GET).
struct AnnounceRequest {
  Sha1Digest info_hash;
  std::array<std::uint8_t, 20> peer_id{};
  std::uint16_t port = 6881;
  std::uint64_t uploaded = 0;
  std::uint64_t downloaded = 0;
  std::uint64_t left = 0;
  TrackerEvent event = TrackerEvent::kNone;
  std::uint32_t numwant = 50;
  bool compact = true;
};

/// Percent-encodes arbitrary bytes per RFC 3986 (unreserved characters
/// pass through).
std::string percent_encode(std::string_view bytes);

/// Builds the full announce URL: `base_url?info_hash=...&peer_id=...&...`.
/// `base_url` must not already contain a query string.
std::string build_announce_url(const std::string& base_url,
                               const AnnounceRequest& request);

/// One peer entry in a tracker response.
struct TrackerPeerEntry {
  std::uint32_t ipv4 = 0;  ///< host byte order
  std::uint16_t port = 0;
  /// Peer id; present only in the non-compact (dict) form.
  std::optional<std::string> peer_id;

  bool operator==(const TrackerPeerEntry&) const = default;
};

/// A tracker announce response.
struct AnnounceResponse {
  /// Set when the tracker rejected the announce; other fields undefined.
  std::optional<std::string> failure_reason;
  std::uint32_t interval = 1800;
  std::uint64_t complete = 0;    ///< seeds
  std::uint64_t incomplete = 0;  ///< leechers
  std::vector<TrackerPeerEntry> peers;

  bool operator==(const AnnounceResponse&) const = default;
};

/// Serializes a response; `compact` packs peers as 6-byte entries
/// (BEP 23), otherwise as a list of dicts with peer ids.
std::string encode_announce_response(const AnnounceResponse& response,
                                     bool compact);

/// Parses either form; throws BencodeError/WireError on malformed input.
AnnounceResponse decode_announce_response(std::string_view data);

}  // namespace swarmlab::wire
