// Liveness guard for Simulation runs.
//
// A discrete-event simulation only returns control between events, so a
// pathological scenario can burn wall clock in three distinct ways:
// exceed a sensible wall/event budget while still making progress,
// livelock (events churn but simulated time never advances, e.g. a
// zero-delay reschedule cycle), or stall (simulated time frozen for many
// wall seconds). ProgressMonitor watches all three from inside the event
// loop and trips a sticky flag that makes Simulation::run_until() return
// immediately with a diagnostic, instead of spinning until someone kills
// the process.
//
// The monitor is purely observational until it trips: attaching one to a
// run that stays inside its budgets changes no trajectory, no RNG draw,
// and no event count, so golden-digest replay identity is preserved.
// Wall-clock checks happen only every `check_interval` events to keep the
// per-event cost to a few arithmetic instructions.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace swarmlab::sim {

/// Why a monitored run was cut short (kNone = still healthy).
enum class MonitorTrip {
  kNone,
  kWallBudget,   ///< wall-clock budget exhausted (run made progress)
  kEventBudget,  ///< executed-event budget exhausted
  kLivelock,     ///< sim-time frozen across too many consecutive events
  kStalled,      ///< sim-time frozen for too many wall seconds
  kCancelled,    ///< external request_stop()
};

[[nodiscard]] const char* to_string(MonitorTrip trip);

struct MonitorConfig {
  /// Wall-clock budget for the whole run (seconds); <= 0 disables.
  double wall_budget = 0.0;
  /// Budget of executed events; 0 disables.
  std::uint64_t event_budget = 0;
  /// Trip after this many consecutive events at a frozen simulated time
  /// (zero-delay reschedule cycles); 0 disables. The default is far above
  /// any legitimate same-timestamp event batch (peak_pending tops out in
  /// the thousands) but catches a livelock within ~1 wall second.
  std::uint64_t livelock_events = 4'000'000;
  /// Trip when simulated time has not advanced for this many wall
  /// seconds; <= 0 disables. Catches slow-churn livelocks that the
  /// consecutive-event counter would take too long to notice.
  double stall_wall_seconds = 0.0;
  /// Events between wall-clock reads (budget/stall/cancel checks live on
  /// this slow path; the livelock counter is checked every event).
  std::uint64_t check_interval = 4096;
};

class ProgressMonitor {
 public:
  explicit ProgressMonitor(MonitorConfig cfg = {});

  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  /// Called by Simulation::run_until() after each fired event. Returns
  /// true once the monitor has tripped (sticky).
  bool on_event(double sim_now) {
    if (trip_ != MonitorTrip::kNone) return true;
    if (sim_now > last_sim_time_) {
      last_sim_time_ = sim_now;
      frozen_run_ = 0;
    } else if (cfg_.livelock_events != 0 &&
               ++frozen_run_ >= cfg_.livelock_events) {
      return trip_livelock(sim_now);
    }
    ++executed_;
    if (cfg_.event_budget != 0 && executed_ >= cfg_.event_budget) {
      return trip_event_budget(sim_now);
    }
    if (--until_check_ == 0) return slow_check(sim_now);
    return false;
  }

  /// Thread-safe external cancellation (e.g. a harness watchdog). Takes
  /// effect at the next slow-path check; trips as kCancelled.
  void request_stop() { cancel_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool tripped() const { return trip_ != MonitorTrip::kNone; }
  [[nodiscard]] MonitorTrip trip() const { return trip_; }
  /// Human-readable trip reason ("" while healthy).
  [[nodiscard]] const std::string& diagnostic() const { return diagnostic_; }
  [[nodiscard]] const MonitorConfig& config() const { return cfg_; }
  /// Events observed so far (equals the run's executed-event delta).
  [[nodiscard]] std::uint64_t events_observed() const { return executed_; }

 private:
  bool trip_livelock(double sim_now);
  bool trip_event_budget(double sim_now);
  /// Wall-clock reads: budget, stall and cancellation checks.
  bool slow_check(double sim_now);
  bool set_trip(MonitorTrip trip, std::string diagnostic);

  MonitorConfig cfg_;
  double last_sim_time_ = -1.0;
  std::uint64_t frozen_run_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t until_check_ = 0;
  double start_wall_ = 0.0;          ///< steady-clock seconds at ctor
  double last_advance_wall_ = 0.0;   ///< wall time of last sim-time advance
  double last_advance_sim_ = -1.0;   ///< sim time seen at that advance
  MonitorTrip trip_ = MonitorTrip::kNone;
  std::string diagnostic_;
  std::atomic<bool> cancel_{false};
};

}  // namespace swarmlab::sim
