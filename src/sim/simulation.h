// The simulation driver: a clock plus an event queue plus an Rng.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/event_queue.h"
#include "sim/progress_monitor.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace swarmlab::sim {

/// Owns simulated time. Components schedule callbacks against it; run()
/// advances the clock from event to event until the queue drains, a
/// deadline passes, stop() is called, or an attached ProgressMonitor
/// trips (wall/event budget, livelock, stall — see progress_monitor.h).
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// The simulation-wide random source.
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `at` (at >= now()).
  EventId schedule_at(SimTime at, EventFn fn);

  /// Handler for a fast-path event channel. `ctx` is the pointer given
  /// at registration; the payload is the one passed to schedule_fast_*.
  using FastFn = void (*)(void* ctx, const FastPayload& payload);

  /// Registers a fast-path dispatch channel and returns its nonzero tag.
  /// Events scheduled on the channel fire through the raw function
  /// pointer — no std::function is ever constructed. `ctx` must outlive
  /// every event scheduled on the channel. Channels cannot be
  /// unregistered; hot subsystems register once at construction.
  std::uint16_t add_fast_channel(FastFn fn, void* ctx) {
    channels_.push_back(FastChannel{fn, ctx});
    return static_cast<std::uint16_t>(channels_.size());
  }

  /// Fast-path twins of schedule_in/schedule_at. Fire order relative to
  /// closure events is exactly schedule order (shared (time, seq) keys).
  EventId schedule_fast_in(SimTime delay, std::uint16_t channel,
                           FastPayload payload) {
    assert(delay >= 0.0);
    return queue_.schedule_fast(now_ + delay, channel, payload);
  }
  EventId schedule_fast_at(SimTime at, std::uint16_t channel,
                           FastPayload payload) {
    assert(at >= now_);
    return queue_.schedule_fast(at, channel, payload);
  }

  /// Cancels a pending event; returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty, `deadline` is reached, or
  /// stop() is called. Events scheduled exactly at the deadline still run.
  /// Returns the final simulated time.
  SimTime run_until(SimTime deadline);

  /// Runs to queue exhaustion (or stop()).
  SimTime run() { return run_until(std::numeric_limits<SimTime>::max()); }

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Attaches (or detaches, with nullptr) a liveness guard. The monitor
  /// is consulted after every fired event; once it trips, run_until()
  /// returns immediately and refuses to execute further events (sticky),
  /// so driver loops must check halted(). The monitor must outlive the
  /// simulation or be detached first.
  void attach_monitor(ProgressMonitor* monitor) { monitor_ = monitor; }
  [[nodiscard]] ProgressMonitor* monitor() const { return monitor_; }

  /// True once an attached monitor has tripped: the run was terminated
  /// for liveness reasons and no further events will execute.
  [[nodiscard]] bool halted() const {
    return monitor_ != nullptr && monitor_->tripped();
  }

  /// Number of events executed so far (for progress/perf reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Events ever scheduled (fired + cancelled + still pending).
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return queue_.scheduled_count();
  }

  /// Events cancelled before firing.
  [[nodiscard]] std::uint64_t events_cancelled() const {
    return queue_.cancelled_count();
  }

  /// High-water mark of pending events.
  [[nodiscard]] std::size_t peak_pending_events() const {
    return queue_.peak_pending();
  }

  /// Events executed through a fast-path channel (subset of
  /// events_executed()).
  [[nodiscard]] std::uint64_t events_fastpath() const { return fastpath_; }

  /// Bulk dead-entry sweeps the event queue has performed.
  [[nodiscard]] std::uint64_t queue_compactions() const {
    return queue_.compactions_count();
  }

 private:
  struct FastChannel {
    FastFn fn;
    void* ctx;
  };

  EventQueue queue_;
  std::vector<FastChannel> channels_;
  Rng rng_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t fastpath_ = 0;
  ProgressMonitor* monitor_ = nullptr;
};

}  // namespace swarmlab::sim
