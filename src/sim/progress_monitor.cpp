#include "sim/progress_monitor.h"

#include <chrono>
#include <cstdio>

namespace swarmlab::sim {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string format_diag(const char* fmt, double a, double b,
                        unsigned long long c) {
  char buf[192];
  std::snprintf(buf, sizeof buf, fmt, a, b, c);
  return buf;
}

}  // namespace

const char* to_string(MonitorTrip trip) {
  switch (trip) {
    case MonitorTrip::kNone: return "none";
    case MonitorTrip::kWallBudget: return "wall-budget";
    case MonitorTrip::kEventBudget: return "event-budget";
    case MonitorTrip::kLivelock: return "livelock";
    case MonitorTrip::kStalled: return "stalled";
    case MonitorTrip::kCancelled: return "cancelled";
  }
  return "unknown";
}

ProgressMonitor::ProgressMonitor(MonitorConfig cfg) : cfg_(cfg) {
  if (cfg_.check_interval == 0) cfg_.check_interval = 1;
  until_check_ = cfg_.check_interval;
  start_wall_ = wall_now();
  last_advance_wall_ = start_wall_;
}

bool ProgressMonitor::set_trip(MonitorTrip trip, std::string diagnostic) {
  trip_ = trip;
  diagnostic_ = std::move(diagnostic);
  return true;
}

bool ProgressMonitor::trip_livelock(double sim_now) {
  return set_trip(
      MonitorTrip::kLivelock,
      format_diag("livelock: sim-time frozen at t=%.6f for %.0f consecutive "
                  "events (%llu executed)",
                  sim_now, static_cast<double>(cfg_.livelock_events),
                  static_cast<unsigned long long>(executed_)));
}

bool ProgressMonitor::trip_event_budget(double sim_now) {
  return set_trip(
      MonitorTrip::kEventBudget,
      format_diag("event budget exhausted: %.0f events executed by t=%.6f "
                  "(budget %llu)",
                  static_cast<double>(executed_), sim_now,
                  static_cast<unsigned long long>(cfg_.event_budget)));
}

bool ProgressMonitor::slow_check(double sim_now) {
  until_check_ = cfg_.check_interval;
  const double wall = wall_now();
  if (cancel_.load(std::memory_order_relaxed)) {
    return set_trip(
        MonitorTrip::kCancelled,
        format_diag("cancelled externally at t=%.6f after %.1f wall "
                    "seconds (%llu events)",
                    sim_now, wall - start_wall_,
                    static_cast<unsigned long long>(executed_)));
  }
  if (cfg_.wall_budget > 0.0 && wall - start_wall_ > cfg_.wall_budget) {
    return set_trip(
        MonitorTrip::kWallBudget,
        format_diag("wall-clock budget exhausted: %.1f s elapsed at "
                    "t=%.6f (budget %llu ms)",
                    wall - start_wall_, sim_now,
                    static_cast<unsigned long long>(cfg_.wall_budget *
                                                    1000.0)));
  }
  if (cfg_.stall_wall_seconds > 0.0) {
    if (sim_now > last_advance_sim_) {
      last_advance_sim_ = sim_now;
      last_advance_wall_ = wall;
    } else if (wall - last_advance_wall_ > cfg_.stall_wall_seconds) {
      return set_trip(
          MonitorTrip::kStalled,
          format_diag("stalled: sim-time frozen at t=%.6f for %.1f wall "
                      "seconds (%llu events)",
                      sim_now, wall - last_advance_wall_,
                      static_cast<unsigned long long>(executed_)));
    }
  }
  return false;
}

}  // namespace swarmlab::sim
