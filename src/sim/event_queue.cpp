#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace swarmlab::sim {

namespace {
constexpr auto kMinHeap = std::greater<>{};
}  // namespace

EventId EventQueue::schedule(SimTime at, EventFn fn) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const EventId id = pack(slots_[slot].gen, slot);
  slots_[slot].fn = std::move(fn);
  heap_.push_back(Entry{at, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), kMinHeap);
  ++live_;
  ++scheduled_;
  peak_ = std::max(peak_, live_);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!is_pending(id)) return false;
  // Bumping the generation is the act of cancellation; the heap entry is
  // discarded lazily (drop_cancelled) or in bulk (compact).
  release(static_cast<std::uint32_t>((id & 0xffffffffu) - 1));
  ++cancelled_;
  if (heap_.size() >= 64 && heap_.size() > 2 * live_) compact();
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !is_pending(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), kMinHeap);
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && !is_pending(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), kMinHeap);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const std::uint32_t slot =
      static_cast<std::uint32_t>((heap_.front().id & 0xffffffffu) - 1);
  Fired fired{heap_.front().time, heap_.front().id,
              std::move(slots_[slot].fn)};
  std::pop_heap(heap_.begin(), heap_.end(), kMinHeap);
  heap_.pop_back();
  release(slot);
  return fired;
}

}  // namespace swarmlab::sim
