#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace swarmlab::sim {

EventId EventQueue::schedule(SimTime at, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Erasing from pending_ is the act of cancellation; the heap entry is
  // discarded lazily when it reaches the top.
  return pending_.erase(id) > 0;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  Fired fired{heap_.top().time, heap_.top().id, std::move(heap_.top().fn)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

}  // namespace swarmlab::sim
