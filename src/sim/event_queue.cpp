#include "sim/event_queue.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace swarmlab::sim {

namespace {
// Orders both tiers: the heap as a min-heap, wheel buckets descending so
// the bucket minimum pops off the back.
constexpr auto kMinHeap = std::greater<>{};
}  // namespace

EventId EventQueue::place(SimTime at) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const EventId id = pack(slots_[slot].gen, slot);
  const Entry e{at, next_seq_++, id};

  // Tier routing. A drained wheel re-anchors at the first finite time it
  // sees; entries before the window, past its horizon, or in a bucket
  // range the cursor has already drained go to the heap, so the wheel
  // never has to look behind its cursor.
  if (wheel_entries_ == 0 && std::isfinite(at)) {
    wheel_base_ = at;
    wheel_cursor_ = 0;
  }
  const double rel = at - wheel_base_;
  if (!(rel >= 0.0) || rel >= kWheelSpan) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), kMinHeap);
  } else {
    const auto idx = static_cast<std::size_t>(rel * (1.0 / kBucketWidth));
    if (idx < wheel_cursor_ || idx >= kWheelBuckets) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), kMinHeap);
    } else {
      Bucket& b = buckets_[idx];
      if (b.sorted) {
        // Keep the cursor bucket's descending (time, seq) order.
        b.v.insert(std::lower_bound(b.v.begin(), b.v.end(), e, kMinHeap), e);
      } else {
        b.v.push_back(e);
      }
      ++wheel_entries_;
    }
  }

  ++live_;
  ++scheduled_;
  peak_ = std::max(peak_, live_);
  return id;
}

EventId EventQueue::schedule(SimTime at, EventFn fn) {
  const EventId id = place(at);
  Slot& s = slots_[static_cast<std::uint32_t>((id & 0xffffffffu) - 1)];
  s.channel = 0;
  s.fn = std::move(fn);
  return id;
}

EventId EventQueue::schedule_fast(SimTime at, std::uint16_t channel,
                                  FastPayload payload) {
  assert(channel != 0);
  const EventId id = place(at);
  Slot& s = slots_[static_cast<std::uint32_t>((id & 0xffffffffu) - 1)];
  s.channel = channel;
  s.payload = payload;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!is_pending(id)) return false;
  // Bumping the generation is the act of cancellation; the tier entry is
  // discarded lazily (wheel_peek/drop_cancelled) or in bulk (compact).
  release(static_cast<std::uint32_t>((id & 0xffffffffu) - 1));
  ++cancelled_;
  if (total_entries() >= 64 && total_entries() > 2 * live_) compact();
  return true;
}

void EventQueue::compact() {
  const auto stale = [this](const Entry& e) { return !is_pending(e.id); };
  std::erase_if(heap_, stale);
  std::make_heap(heap_.begin(), heap_.end(), kMinHeap);
  for (std::size_t i = wheel_cursor_; i < kWheelBuckets; ++i) {
    if (buckets_[i].v.empty()) continue;
    wheel_entries_ -= std::erase_if(buckets_[i].v, stale);
  }
  ++compactions_;
}

EventQueue::Entry* EventQueue::wheel_peek() {
  while (wheel_entries_ > 0) {
    assert(wheel_cursor_ < kWheelBuckets);
    Bucket& b = buckets_[wheel_cursor_];
    if (!b.sorted) {
      std::sort(b.v.begin(), b.v.end(), kMinHeap);
      b.sorted = true;
    }
    while (!b.v.empty() && !is_pending(b.v.back().id)) {
      b.v.pop_back();
      --wheel_entries_;
    }
    if (!b.v.empty()) return &b.v.back();
    b.sorted = false;
    ++wheel_cursor_;
  }
  return nullptr;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && !is_pending(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), kMinHeap);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  Entry* w = wheel_peek();
  drop_cancelled();
  if (w == nullptr) {
    assert(!heap_.empty());
    return heap_.front().time;
  }
  if (heap_.empty() || kMinHeap(heap_.front(), *w)) return w->time;
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  Entry* w = wheel_peek();
  drop_cancelled();
  // (time, seq) is a strict total order, so exactly one tier holds the
  // global minimum; ids are unique, so equality across tiers is
  // impossible.
  Entry top;
  if (w != nullptr && (heap_.empty() || kMinHeap(heap_.front(), *w))) {
    top = *w;
    buckets_[wheel_cursor_].v.pop_back();
    --wheel_entries_;
  } else {
    assert(!heap_.empty());
    top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), kMinHeap);
    heap_.pop_back();
  }
  return take(top);
}

bool EventQueue::pop_until(SimTime deadline, Fired* out) {
  if (live_ == 0) return false;
  Entry* w = wheel_peek();
  drop_cancelled();
  // Same tier choice as pop(); the deadline check happens on the global
  // minimum before extraction, so a refusal disturbs nothing.
  const bool from_wheel =
      w != nullptr && (heap_.empty() || kMinHeap(heap_.front(), *w));
  const Entry top = from_wheel ? *w : heap_.front();
  if (top.time > deadline) return false;
  if (from_wheel) {
    buckets_[wheel_cursor_].v.pop_back();
    --wheel_entries_;
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), kMinHeap);
    heap_.pop_back();
  }
  *out = take(top);
  return true;
}

EventQueue::Fired EventQueue::take(const Entry& top) {
  const auto slot = static_cast<std::uint32_t>((top.id & 0xffffffffu) - 1);
  Slot& s = slots_[slot];
  Fired fired{top.time, top.id, s.payload, s.channel,
              s.channel == 0 ? std::move(s.fn) : EventFn{}};
  release(slot);
  return fired;
}

}  // namespace swarmlab::sim
