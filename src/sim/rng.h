// Deterministic random number generation for simulations.
//
// All stochastic choices in a simulation must flow through one Rng so that
// a (scenario, seed) pair fully determines the run.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <random>
#include <unordered_map>
#include <vector>

namespace swarmlab::sim {

/// Derives an independent per-stream seed from a master seed (SplitMix64
/// over the (master, stream) pair). Batch runs give every job the stream
/// seed `fork_seed(master, job_index)` so each job's Rng is fully
/// determined by (master, index) — independent of thread count, scheduling
/// or completion order — while distinct streams stay statistically
/// uncorrelated even for adjacent master seeds.
inline std::uint64_t fork_seed(std::uint64_t master, std::uint64_t stream) {
  std::uint64_t z = master + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Seeded pseudo-random source with the distribution helpers the
/// simulator needs. Copyable (copies fork the stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this Rng was constructed with (for experiment logging).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi], inclusive. Precondition: lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Precondition: n > 0.
  std::size_t index(std::size_t n) {
    assert(n > 0);
    return static_cast<std::size_t>(uniform_int(0, n - 1));
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normally distributed value, clamped below at `floor`.
  double normal(double mean, double stddev, double floor) {
    const double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return std::max(v, floor);
  }

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0
  /// (heavy-tailed capacities / session lengths).
  double pareto(double xm, double alpha) {
    assert(xm > 0.0 && alpha > 0.0);
    const double u = std::uniform_real_distribution<double>(
        std::numeric_limits<double>::min(), 1.0)(engine_);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Uniformly selected element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Samples k distinct indices from [0, n) uniformly (k <= n).
  ///
  /// Engine consumption depends only on (n, k) — exactly k draws of
  /// index(n - i) — and the returned sequence is the partial
  /// Fisher-Yates result for those draws, regardless of which internal
  /// strategy runs. Dense (materialize [0, n)) for small n; sparse
  /// (hash-map Fisher-Yates, O(k) memory and time) when n is large and
  /// k small, so mega-swarm samplers (e.g. a tracker answering one
  /// announce out of 10k members) stay O(k). The strategy switch is a
  /// pure function of (n, k), so replay identity holds everywhere.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    assert(k <= n);
    std::vector<std::size_t> out;
    out.reserve(k);
    if (n <= 4 * k + 64) {
      std::vector<std::size_t> all(n);
      for (std::size_t i = 0; i < n; ++i) all[i] = i;
      // Partial Fisher-Yates: only the first k positions are needed.
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + index(n - i);
        std::swap(all[i], all[j]);
      }
      all.resize(k);
      return all;
    }
    // Sparse partial Fisher-Yates over the virtual array v[p] = p:
    // `moved` records only the positions whose value a swap displaced.
    // Identical draws and identical output to the dense loop above.
    std::unordered_map<std::size_t, std::size_t> moved;
    moved.reserve(2 * k);
    const auto value_at = [&moved](std::size_t pos) {
      const auto it = moved.find(pos);
      return it == moved.end() ? pos : it->second;
    };
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + index(n - i);
      const std::size_t vi = value_at(i);
      const std::size_t vj = value_at(j);
      out.push_back(vj);      // after swap, v[i] = old v[j]
      moved[j] = vi;          // and v[j] = old v[i] (j >= i, still live)
    }
    return out;
  }

  /// Access to the underlying engine for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace swarmlab::sim
