// Basic simulation types shared across swarmlab.
#pragma once

#include <cstdint>

namespace swarmlab::sim {

/// Simulated time, in seconds since the start of the simulation.
using SimTime = double;

/// Sentinel for "never" / "not scheduled".
inline constexpr SimTime kNever = -1.0;

/// Monotonically increasing identifier for scheduled events.
using EventId = std::uint64_t;

}  // namespace swarmlab::sim
