#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace swarmlab::sim {

EventId Simulation::schedule_in(SimTime delay, EventFn fn) {
  assert(delay >= 0.0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(SimTime at, EventFn fn) {
  assert(at >= now_);
  return queue_.schedule(at, std::move(fn));
}

SimTime Simulation::run_until(SimTime deadline) {
  stopped_ = false;
  // A tripped monitor is sticky: the run was terminated for liveness
  // reasons and re-entering the loop would just spin it again.
  if (halted()) return now_;
  EventQueue::Fired fired;
  while (!stopped_ && queue_.pop_until(deadline, &fired)) {
    assert(fired.time >= now_);
    now_ = fired.time;
    ++executed_;
    if (fired.channel == 0) {
      fired.fn();
    } else {
      assert(fired.channel <= channels_.size());
      ++fastpath_;
      const FastChannel& ch = channels_[fired.channel - 1];
      ch.fn(ch.ctx, fired.payload);
    }
    if (monitor_ != nullptr && monitor_->on_event(now_)) return now_;
  }
  // When the deadline cuts the run short, report the deadline as "now" so
  // periodic samplers see a full final interval.
  if (!stopped_ && now_ < deadline &&
      deadline < std::numeric_limits<SimTime>::max()) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace swarmlab::sim
