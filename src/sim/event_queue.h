// A cancellable priority queue of timed events.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in the order they were scheduled — a requirement for deterministic
// replay of a simulation given a fixed RNG seed.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.h"

namespace swarmlab::sim {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Min-heap of timed events with O(1) logical cancellation.
///
/// Cancellation is lazy: a cancelled event stays in the heap until it is
/// popped, at which point it is discarded without running.
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `at`. Returns an id usable
  /// with `cancel()`.
  EventId schedule(SimTime at, EventFn fn);

  /// Cancels a pending event. Returns true if the event was still pending
  /// (not yet fired and not already cancelled).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// What pop() returns: the fired event's time, id and callback.
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };

  /// Pops and returns the earliest live event, advancing past any
  /// cancelled entries. Precondition: !empty().
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    mutable EventFn fn;  // moved out of the heap top in pop()

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Discards cancelled entries sitting at the top of the heap.
  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> pending_;  // ids scheduled, not fired/cancelled
  EventId next_id_ = 1;
};

}  // namespace swarmlab::sim
