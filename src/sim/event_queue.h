// A cancellable priority queue of timed events.
//
// Events fire in (time, schedule-sequence) order, so simultaneous events
// run in the order they were scheduled — a requirement for deterministic
// replay of a simulation given a fixed RNG seed.
//
// EventIds are generation-checked slot handles: the low half encodes a
// slot (biased by 1 so no valid id is 0, the "no event" sentinel used by
// callers), the high half the slot's generation. Cancelling or firing an
// event bumps the generation, so a stale id held past its event's
// lifetime can never cancel the slot's next tenant. Fire-order ties are
// broken by a separate monotonic sequence carried in the heap entry —
// slot reuse makes ids non-monotonic, so ids cannot order the heap.
//
// Storage is two-tiered: a calendar wheel of fixed-width time buckets
// absorbs the dense near-future band (where discrete-event simulations
// concentrate their churn), and a binary min-heap holds everything
// beyond the wheel's horizon, behind its cursor, or scheduled while the
// wheel window was exhausted. Both tiers order by the same (time, seq)
// key and pop() always takes the global minimum across them, so the
// fire order is identical to a single binary heap — see the proof
// sketch at wheel_peek(). See docs/performance.md.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace swarmlab::sim {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Payload of a fast-path event: 16 opaque bytes interpreted by the
/// channel handler (e.g. {node, direction} or {flow id, count}).
struct FastPayload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Two-tier priority queue of timed events with O(1) cancellation and
/// slot reuse.
///
/// Cancellation is lazy: a cancelled event's entry stays in its tier
/// until it surfaces, where its stale generation identifies it for
/// discard. The slot itself is reusable immediately.
///
/// Events come in two flavours sharing one id space and one fire order:
/// closure events carry an EventFn, fast-path events carry a channel tag
/// plus a 16-byte POD payload and never touch std::function — hot
/// callers (the packet backend) schedule and fire without allocating.
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `at`. Returns an id usable
  /// with `cancel()`; never 0.
  EventId schedule(SimTime at, EventFn fn);

  /// Schedules a fast-path event at absolute time `at`. `channel` is an
  /// opaque nonzero tag returned to the caller by pop(); dispatching it
  /// is the caller's business (Simulation keeps the handler table).
  EventId schedule_fast(SimTime at, std::uint16_t channel,
                        FastPayload payload);

  /// Cancels a pending event. Returns true if the event was still pending
  /// (not yet fired and not already cancelled).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  /// Non-const: compacts cancelled entries off the tier tops.
  [[nodiscard]] SimTime next_time();

  /// What pop() returns: the fired event's time, id and callback.
  /// `channel` == 0 means a closure event (`fn` holds the callback);
  /// nonzero means a fast-path event (`payload` holds the data, `fn` is
  /// empty).
  struct Fired {
    SimTime time;
    EventId id;
    FastPayload payload;
    std::uint16_t channel;
    EventFn fn;
  };

  /// Pops and returns the earliest live event, advancing past any
  /// cancelled entries. Precondition: !empty().
  Fired pop();

  /// Fused peek-and-pop for the run loop: pops the earliest live event
  /// into `*out` iff the queue is non-empty and that event's time is
  /// <= `deadline`. One tier scan instead of the two a next_time()/pop()
  /// pair costs. Returns false (leaving `*out` untouched) otherwise.
  bool pop_until(SimTime deadline, Fired* out);

  /// Events ever scheduled.
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }

  /// Events cancelled before firing.
  [[nodiscard]] std::uint64_t cancelled_count() const { return cancelled_; }

  /// High-water mark of live events.
  [[nodiscard]] std::size_t peak_pending() const { return peak_; }

  /// Bulk compactions performed (dead entries swept from both tiers).
  [[nodiscard]] std::uint64_t compactions_count() const {
    return compactions_;
  }

 private:
  /// Tier entries are 24-byte PODs: sift/sort moves are plain copies
  /// instead of std::function move-constructor calls. The callback (or
  /// payload) lives in the slot.
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // schedule order; breaks equal-time ties
    EventId id;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Slot {
    std::uint32_t gen = 0;
    std::uint16_t channel = 0;  // 0 = closure event, else fast-path tag
    FastPayload payload;
    EventFn fn;
  };

  /// One wheel bucket: entries with times in [base + i*w, base + (i+1)*w).
  /// `sorted` holds only for the cursor bucket once it has been peeked:
  /// descending (time, seq) so the minimum pops off the back in O(1).
  struct Bucket {
    std::vector<Entry> v;
    bool sorted = false;
  };

  // Wheel geometry. The width is a power of two so relative times scale
  // exactly; the horizon (buckets * width = 4 s) covers the dense band of
  // transfer completions and control latencies while long timers
  // (rechoke, announce, keepalive) overflow to the heap, keeping it
  // small. The wheel window is absolute and non-wrapping: when it drains
  // it re-anchors at the next scheduled time.
  static constexpr std::size_t kWheelBuckets = 4096;
  static constexpr double kBucketWidth = 1.0 / 1024.0;
  static constexpr double kWheelSpan = kWheelBuckets * kBucketWidth;

  static constexpr EventId pack(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// True if `id` names the current, still-pending tenant of its slot.
  [[nodiscard]] bool is_pending(EventId id) const {
    const std::uint64_t biased = id & 0xffffffffu;
    if (biased == 0 || biased > slots_.size()) return false;
    return slots_[biased - 1].gen == static_cast<std::uint32_t>(id >> 32);
  }

  /// Retires a slot: invalidates outstanding ids, frees the callback's
  /// captured resources, allows reuse.
  void release(std::uint32_t slot) {
    ++slots_[slot].gen;
    slots_[slot].fn = nullptr;
    free_.push_back(slot);
    --live_;
  }

  /// Allocates a slot and pushes an entry for it into the right tier.
  EventId place(SimTime at);

  /// Earliest live wheel entry (nullptr when the wheel holds none),
  /// purging stale entries and advancing the cursor past drained
  /// buckets.
  ///
  /// Why this is the wheel's minimum: buckets partition disjoint,
  /// ascending time ranges, so the first non-empty bucket at or after
  /// the cursor contains every candidate for the wheel's earliest time;
  /// within it, entries are kept descending by (time, seq), so the back
  /// is the exact minimum. Entries that would land in a range the
  /// cursor already passed are routed to the heap at schedule time, so
  /// no entry is ever skipped.
  Entry* wheel_peek();

  /// Discards cancelled entries sitting at the top of the heap.
  void drop_cancelled();

  /// Moves the popped entry's slot contents into a Fired and retires the
  /// slot.
  Fired take(const Entry& top);

  /// Rebuilds both tiers without their dead entries. Triggered when dead
  /// entries outnumber live ones, so the amortized cost per cancel is
  /// O(1) — far cheaper than sifting each dead entry through the root.
  /// Pop order is unaffected: (time, seq) is a total order (seq is
  /// unique), so any valid layout pops identically; in-bucket erasure
  /// preserves relative order, so sorted buckets stay sorted.
  void compact();

  /// Entries across both tiers, dead ones included.
  [[nodiscard]] std::size_t total_entries() const {
    return heap_.size() + wheel_entries_;
  }

  std::vector<Entry> heap_;  // min-heap via std::*_heap with greater<>
  std::vector<Bucket> buckets_{kWheelBuckets};
  double wheel_base_ = 0.0;       // time of bucket 0's left edge
  std::size_t wheel_cursor_ = 0;  // first bucket not yet drained
  std::size_t wheel_entries_ = 0; // entries in buckets, dead included
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // retired slots awaiting reuse
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace swarmlab::sim
