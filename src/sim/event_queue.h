// A cancellable priority queue of timed events.
//
// Events fire in (time, schedule-sequence) order, so simultaneous events
// run in the order they were scheduled — a requirement for deterministic
// replay of a simulation given a fixed RNG seed.
//
// EventIds are generation-checked slot handles: the low half encodes a
// slot (biased by 1 so no valid id is 0, the "no event" sentinel used by
// callers), the high half the slot's generation. Cancelling or firing an
// event bumps the generation, so a stale id held past its event's
// lifetime can never cancel the slot's next tenant. Fire-order ties are
// broken by a separate monotonic sequence carried in the heap entry —
// slot reuse makes ids non-monotonic, so ids cannot order the heap.
// See docs/performance.md.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace swarmlab::sim {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Min-heap of timed events with O(1) cancellation and slot reuse.
///
/// Cancellation is lazy: a cancelled event's heap entry stays until it
/// reaches the top, where its stale generation identifies it for
/// discard. The slot itself is reusable immediately.
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `at`. Returns an id usable
  /// with `cancel()`; never 0.
  EventId schedule(SimTime at, EventFn fn);

  /// Cancels a pending event. Returns true if the event was still pending
  /// (not yet fired and not already cancelled).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  /// Non-const: compacts cancelled entries off the heap top.
  [[nodiscard]] SimTime next_time();

  /// What pop() returns: the fired event's time, id and callback.
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };

  /// Pops and returns the earliest live event, advancing past any
  /// cancelled entries. Precondition: !empty().
  Fired pop();

  /// Events ever scheduled.
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }

  /// Events cancelled before firing.
  [[nodiscard]] std::uint64_t cancelled_count() const { return cancelled_; }

  /// High-water mark of live events.
  [[nodiscard]] std::size_t peak_pending() const { return peak_; }

 private:
  /// Heap entries are 24-byte PODs: sift moves are plain copies instead
  /// of std::function move-constructor calls. The callback lives in the
  /// slot and is destroyed eagerly on cancel.
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // schedule order; breaks equal-time ties
    EventId id;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Slot {
    std::uint32_t gen = 0;
    EventFn fn;
  };

  static constexpr EventId pack(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// True if `id` names the current, still-pending tenant of its slot.
  [[nodiscard]] bool is_pending(EventId id) const {
    const std::uint64_t biased = id & 0xffffffffu;
    if (biased == 0 || biased > slots_.size()) return false;
    return slots_[biased - 1].gen == static_cast<std::uint32_t>(id >> 32);
  }

  /// Retires a slot: invalidates outstanding ids, frees the callback's
  /// captured resources, allows reuse.
  void release(std::uint32_t slot) {
    ++slots_[slot].gen;
    slots_[slot].fn = nullptr;
    free_.push_back(slot);
    --live_;
  }

  /// Discards cancelled entries sitting at the top of the heap.
  void drop_cancelled();

  /// Rebuilds the heap without its dead entries. Triggered when dead
  /// entries outnumber live ones, so the amortized cost per cancel is
  /// O(1) — far cheaper than sifting each dead entry through the root.
  /// Pop order is unaffected: (time, seq) is a total order (seq is
  /// unique), so any valid heap layout pops identically.
  void compact();

  std::vector<Entry> heap_;  // min-heap via std::*_heap with greater<>
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // retired slots awaiting reuse
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace swarmlab::sim
